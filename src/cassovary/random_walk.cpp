#include "cassovary/random_walk.hpp"

#include <algorithm>
#include <atomic>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/score_map.hpp"
#include "util/top_k.hpp"

namespace snaple::cassovary {

namespace {

/// Runs the walks for one source, accumulating visit counts into `counts`
/// (cleared by the caller). Returns steps taken.
std::size_t walk_from(const CsrGraph& g, VertexId source,
                      const WalkConfig& cfg, Rng& rng, ScoreMap& counts) {
  std::size_t steps = 0;
  for (std::size_t w = 0; w < cfg.walks; ++w) {
    VertexId cur = source;
    for (std::size_t d = 0; d < cfg.depth; ++d) {
      const auto nbrs = g.out_neighbors(cur);
      if (nbrs.empty()) {
        if (!cfg.restart_at_sink) break;
        cur = source;
        const auto src_nbrs = g.out_neighbors(cur);
        if (src_nbrs.empty()) break;  // isolated source: nowhere to go
        continue;
      }
      cur = nbrs[rng.next_below(nbrs.size())];
      ++steps;
      if (cur != source) {
        counts.accumulate(cur, 0.0f, 1,
                          [](float, float) { return 0.0f; });
      }
    }
  }
  return steps;
}

}  // namespace

RandomWalkEngine::RandomWalkEngine(const CsrGraph& graph, ThreadPool* pool)
    : graph_(graph), pool_(pool != nullptr ? pool : &default_pool()) {}

WalkResult RandomWalkEngine::predict_all(const WalkConfig& config) const {
  const VertexId n = graph_.num_vertices();
  WalkResult result;
  result.predictions.resize(n);

  const std::size_t slots = pool_->slot_count();
  struct WorkerScratch {
    ScoreMap counts{64};
    std::size_t steps = 0;
  };
  std::vector<WorkerScratch> scratch(slots);

  pool_->parallel_for(0, n, [&](std::size_t i, std::size_t slot) {
    const auto u = static_cast<VertexId>(i);
    auto& ws = scratch[slot];
    ws.counts.clear();
    // Per-vertex RNG stream: results do not depend on scheduling.
    Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (u + 1)));
    ws.steps += walk_from(graph_, u, config, rng, ws.counts);

    const auto nbrs = graph_.out_neighbors(u);
    TopK<VertexId, std::uint64_t> top(config.k);
    ws.counts.for_each([&](VertexId z, float, std::uint32_t count) {
      if (std::binary_search(nbrs.begin(), nbrs.end(), z)) return;
      top.offer(z, count);
    });
    result.predictions[u] = top.take_items();
  });

  for (const auto& ws : scratch) result.total_steps += ws.steps;
  return result;
}

std::vector<std::pair<VertexId, std::uint32_t>>
RandomWalkEngine::visit_counts(VertexId source,
                               const WalkConfig& config) const {
  SNAPLE_CHECK(source < graph_.num_vertices());
  ScoreMap counts(64);
  Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (source + 1)));
  walk_from(graph_, source, config, rng, counts);
  std::vector<std::pair<VertexId, std::uint32_t>> out;
  counts.for_each([&](VertexId z, float, std::uint32_t c) {
    out.emplace_back(z, c);
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace snaple::cassovary
