// Single-machine, in-memory, multithreaded random-walk engine — our
// from-scratch stand-in for Twitter's Cassovary library (§5.9 of the
// paper; see docs/DATASETS.md for the substitution rationale).
//
// The paper's comparison point is personalized-PageRank approximated by
// Monte-Carlo random walks: for each source vertex run `w` walks of depth
// `d`, count visits, and return the k most-visited vertices outside
// Γ(u) ∪ {u} as predictions. Increasing w / d explores more candidates,
// trading time for recall — the knobs of Figure 11.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/thread_pool.hpp"

namespace snaple::cassovary {

struct WalkConfig {
  std::size_t walks = 100;   // w: walks per source vertex
  std::size_t depth = 3;     // d: steps per walk
  std::size_t k = 5;         // predictions per vertex
  std::uint64_t seed = 1;
  /// Restart the walk at the source when it hits a sink (out-degree 0) —
  /// the usual PPR convention for dangling vertices.
  bool restart_at_sink = true;
};

struct WalkResult {
  std::vector<std::vector<VertexId>> predictions;
  std::size_t total_steps = 0;  // walk steps actually taken
};

class RandomWalkEngine {
 public:
  explicit RandomWalkEngine(const CsrGraph& graph, ThreadPool* pool = nullptr);

  /// Monte-Carlo PPR prediction for every vertex. Deterministic for a
  /// given seed, independent of the thread count (each vertex has its own
  /// RNG stream).
  [[nodiscard]] WalkResult predict_all(const WalkConfig& config) const;

  /// Visit counts of w walks of depth d from a single source (exposed for
  /// tests and for callers wanting raw PPR mass instead of top-k).
  [[nodiscard]] std::vector<std::pair<VertexId, std::uint32_t>> visit_counts(
      VertexId source, const WalkConfig& config) const;

 private:
  const CsrGraph& graph_;
  ThreadPool* pool_;
};

}  // namespace snaple::cassovary
