// snaple_cli — batch link prediction AND model serving from the command
// line.
//
//   $ ./snaple_cli <edge-list-file | replica-name> [options]   batch run
//   $ ./snaple_cli graph.txt --fit --save-model=m.bin          fit offline
//   $ ./snaple_cli --load-model=m.bin --query=3,17,42          serve
//   $ ./snaple_cli graph.txt --update=new.txt --query=3        live updates
//
// Graph / config options:
//   --symmetrize        treat the input edge list as undirected
//   --score=<name>      Table-3 scoring method        [linearSum]
//   --k=<n>             predictions per vertex/query  [5]
//   --klocal=<n|inf>    sampling parameter            [20]
//   --thr=<n|inf>       truncation threshold          [200]
//   --khops=<2|3>       path length                   [2]
//   --hop2min=<f>       K=3 2-hop pruning threshold   [0 = off]
//   --machines=<n>      simulated cluster size        [1]
//   --partition=<s>     vertex-cut strategy: hash|greedy|local  [greedy;
//                       local = insertion-stable endpoint-hash placement,
//                       required by --update on >1 machine and forced as
//                       its default]
//   --flat              accounted-only engine (default: --machines>1
//                       runs truly sharded — per-machine graph shards,
//                       replica-local vertex data, explicit message
//                       exchange — and prints per-shard stats)
//   --type2             use type-II machines (else type-I / single)
//   --eval              hide one edge per vertex first and report recall
//                       (batch mode only)
//   --seed=<n>          RNG seed                      [1]
//   --out=<file>        write predictions             [stdout]
//   --threads=<n>       loader thread count           [hardware]
//   --convert=<file>    write input as binary v2 and exit
//   --save-bin=<file>   also write loaded graph as binary v2
//   --compress          hold the graph delta-compressed
//                       (graph/compressed_csr.hpp): batch runs decode
//                       rows on the fly instead of inflating the flat
//                       CSR (bit-identical predictions and accounting),
//                       and --convert/--save-bin write binary v3 —
//                       compressed rows on disk that later --compress
//                       runs load without ever inflating. Batch flow
//                       only (--eval and the serving flows need the
//                       flat graph).
//
// Serving options (any of these switches to the fit/serve flow):
//   --fit               fit the model (steps 1–2) and stop — no batch
//                       predictions; combine with --save-model
//   --save-model=<file> serialize the fitted model (SNAPLEM1 format)
//   --load-model=<file> serve from a saved model instead of fitting;
//                       the graph argument is not needed
//   --query=u1,u2,...   answer top-k for the listed vertices, printed as
//                       "u: z1(score) z2(score) ..."
//   --update=<file>     incremental updates: fit the graph, then stream
//                       the file's edge operations into the served model
//                       (core/dynamic_model.hpp) — "u v" lines insert,
//                       "-u v" lines remove — recomputing only the stale
//                       rows, bit-identical to refitting on the live
//                       (union-minus-tombstones) graph. Already-present
//                       inserts, removals of absent edges, self-loops,
//                       out-of-range ids and malformed lines are skipped
//                       with counts. Combine with --query (served
//                       post-update) and --save-model (writes the
//                       updated model). With --serve-shards the stream
//                       instead flows through the sharded tier's LIVE
//                       update plane (serve/update_router.hpp): no
//                       freeze, no re-shard — every batch fans out to
//                       the shards, each recomputes its share of the
//                       stale rows, and queries stay bit-identical to a
//                       live-graph refit (stale-row / wire-byte /
//                       version stats go to stderr; --save-model does
//                       not combine — the rows live on the shards).
//   --window=<n>        sliding window over the --update stream: only
//                       the last n streamed inserts stay live — each
//                       applied insert that pushes the window past n
//                       expires the oldest in-window edge as a removal
//                       (explicit "-u v" removals also drop an edge out
//                       of the window). The stream order IS the
//                       timestamp order, as in a replayed social log.
//   --serve-shards=<n>  answer --query through a sharded serving tier
//                       (serve/router.hpp): the model is partitioned
//                       into n byte-balanced vertex ranges, each served
//                       by its own shard behind a byte transport, and
//                       every query is routed to its owner. Answers are
//                       bit-identical to the single-process engine.
//   --serve-transport=mem|uds|tcp[:port]
//                       shard transport: in-process byte queues (mem,
//                       default), Unix-domain sockets (uds), or real TCP
//                       loopback connections (tcp; one cluster listener
//                       on 127.0.0.1, kernel-chosen ephemeral port
//                       unless :port is given)
//   --serve-cache-mb=N  with --serve-shards: serve in remote-fetch
//                       locality mode (neighbor rows fetched shard→shard
//                       instead of replicated at build time) with an
//                       N-MB versioned hot-row cache per shard on the
//                       fetch path; stats go to stderr
//   --serve-batch=N     answer --query in batches of N: the router
//                       submits ONE pipelined wire message per owning
//                       shard per batch (also accepted by in-process
//                       serving, where it maps to QueryEngine's batch
//                       entry point)
//
// Input files may be SNAP-style text edge lists (loaded with the
// parallel mmap loader) or snaple binary graphs (v1, v2 or compressed
// v3, autodetected by magic) — convert a big text file once with
// --convert and every later run loads the CSR arrays directly.
//
// Examples:
//   ./snaple_cli livejournal --eval --klocal=40
//   ./snaple_cli soc-pokec.txt --score=counter --machines=8 --type2
//   ./snaple_cli twitter_rv.net --convert=twitter.bin --compress
//   ./snaple_cli twitter.bin --fit --save-model=twitter-model.bin
//   ./snaple_cli --load-model=twitter-model.bin --query=1,7,900 --k=10
#include <algorithm>
#include <deque>
#include <fstream>
#include <span>
#include <unordered_map>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/dynamic_model.hpp"
#include "core/predictor.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "gas/shard.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/io.hpp"
#include "serve/router.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

std::size_t parse_limit(const std::string& value) {
  if (value == "inf") return snaple::kUnlimited;
  return std::strtoull(value.c_str(), nullptr, 10);
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// True if the file starts with a snaple binary-graph magic ("SNAPLEG?").
bool is_binary_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[7] = {};
  in.read(magic, sizeof(magic));
  return in && std::string(magic, sizeof(magic)) == "SNAPLEG";
}

/// Parses "--query=1,5,42" into vertex ids.
std::vector<snaple::VertexId> parse_query_list(const std::string& list) {
  std::vector<snaple::VertexId> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(item.c_str(), &end, 10);
      if (end == item.c_str() || *end != '\0' || v > 0xfffffffeULL) {
        throw snaple::CheckError("bad --query vertex id '" + item + "'");
      }
      out.push_back(static_cast<snaple::VertexId>(v));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void print_scored(std::ostream& out, snaple::VertexId u,
                  const std::vector<std::pair<snaple::VertexId, float>>&
                      predictions) {
  out << u << ':';
  for (const auto& [z, score] : predictions) {
    out << ' ' << z << '(' << score << ')';
  }
  out << '\n';
}

/// Serves --query=... against anything with num_vertices(), topk(u, k)
/// and topk_batch(users, k) — the in-process QueryEngine or a sharded
/// QueryRouter: validates every id up front (no partial output on a bad
/// request), then prints "u: z(score) ..." lines. k = 0 means the
/// model's configured k; batch > 1 submits chunks of that many queries
/// through the batch entry point. Returns a process exit code.
template <typename Server>
int serve_queries(Server& server, const std::string& query_list,
                  std::size_t k, std::size_t batch, std::ostream& out) {
  try {
    const auto users = parse_query_list(query_list);
    for (const snaple::VertexId u : users) {
      if (u >= server.num_vertices()) {
        std::cerr << "--query vertex " << u << " out of range (model has "
                  << server.num_vertices() << " vertices)\n";
        return 1;
      }
    }
    if (batch > 1) {
      for (std::size_t i = 0; i < users.size(); i += batch) {
        const std::span<const snaple::VertexId> chunk(
            users.data() + i, std::min(batch, users.size() - i));
        const auto results = server.topk_batch(chunk, k);
        for (std::size_t j = 0; j < chunk.size(); ++j) {
          print_scored(out, chunk[j], results[j]);
        }
      }
    } else {
      for (const snaple::VertexId u : users) {
        print_scored(out, u, server.topk(u, k));
      }
    }
  } catch (const snaple::CheckError& e) {
    std::cerr << "query failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

/// --serve-shards: stands up a ServingCluster over the finished model
/// and answers --query through the router, so every answer crosses the
/// chosen byte transport. cache_mb > 0 switches the cluster to
/// remote-fetch locality with a hot-row cache per shard (keyed by
/// `row_versions` when serving a freeze()d updated model).
int serve_sharded(const snaple::PredictorModel& model, std::size_t shards,
                  snaple::serve::TransportKind transport,
                  std::uint16_t tcp_port, std::size_t cache_mb,
                  std::size_t batch,
                  std::shared_ptr<const std::vector<std::uint64_t>>
                      row_versions,
                  const std::string& query_list, std::size_t k,
                  std::ostream& out) {
  using namespace snaple::serve;
  ServeOptions options;
  options.num_shards = shards;
  options.transport = transport;
  options.tcp_port = tcp_port;
  if (cache_mb > 0) {
    options.colocate = false;  // the cache lives on the fetch path
    options.cache_bytes = cache_mb << 20;
    options.row_versions = std::move(row_versions);
  }
  ServingCluster cluster(model, options);
  std::cerr << "serving over " << shards << " shards ("
            << to_string(transport) << " transport, "
            << (cache_mb > 0 ? "remote-fetch + " + std::to_string(cache_mb) +
                                   " MB hot-row cache/shard"
                             : "colocated rows");
  if (batch > 1) std::cerr << ", batch=" << batch;
  std::cerr << ")\n";
  const int rc = serve_queries(cluster.router(), query_list, k, batch, out);
  std::uint64_t queries = 0, fetches = 0;
  for (const auto& s : cluster.stats()) {
    queries += s.queries;
    fetches += s.remote_fetch_requests;
  }
  const auto rs = cluster.router().stats();
  std::cerr << "shards answered " << queries << " queries ("
            << rs.requests << " wire messages, max " << rs.max_inflight
            << " in flight), " << cluster.router().bytes_sent()
            << " B out, " << cluster.router().bytes_received() << " B in\n";
  if (cache_mb > 0) {
    const RowCacheStats cs = cluster.cache_stats();
    const std::uint64_t lookups = cs.hits + cs.misses;
    std::cerr << "hot-row cache: " << cs.hits << " hits / " << lookups
              << " lookups";
    if (lookups > 0) {
      std::cerr << " (" << snaple::Table::fmt(
                              100.0 * static_cast<double>(cs.hits) /
                                  static_cast<double>(lookups), 1)
                << "%)";
    }
    std::cerr << ", " << cs.evictions << " evictions, " << cs.stale_drops
              << " stale drops, " << fetches << " peer fetches\n";
  }
  return rc;
}

/// Streams edge operations from a SNAP-style text file into a live
/// model in batches: "u v" lines insert, "-u v" lines remove. Lines
/// that cannot be applied — already-present inserts (live streams
/// repeat), removals of absent edges, self-loops, out-of-range ids,
/// malformed text — are counted and skipped rather than aborting the
/// stream.
struct UpdateReport {
  std::size_t applied = 0;   // inserts applied
  std::size_t removed = 0;   // explicit "-u v" removals applied
  std::size_t expired = 0;   // window expirations (applied as removals)
  std::size_t skipped = 0;   // self-loop/out-of-range/malformed/duplicate
  std::size_t unknown_removes = 0;  // removals of edges not in the graph
  std::size_t rows_recomputed = 0;
  double wall_s = 0.0;
};

/// The shared stream driver behind both --update flows (in-process
/// DynamicModel and the sharded live plane). Pre-screens every line
/// against the session's eager edge bookkeeping — `added` holds live
/// session inserts, `tombed` removed base edges, so presence is decided
/// without waiting for a batch to flush — and submits homogeneous
/// batches (a kind flip insert↔remove flushes the pending batch, so
/// stream order is preserved). With window > 0, each applied insert
/// enters a FIFO of the last `window` live stream inserts; pushing past
/// the cap expires the oldest as a removal. `apply(batch, remove)`
/// applies one validated batch and returns the stale rows it
/// republished (0 where the callee reports its own stats).
template <typename ApplyFn>
UpdateReport stream_edge_ops(std::istream& in, const snaple::CsrGraph& base,
                             std::size_t window, ApplyFn&& apply) {
  using namespace snaple;
  constexpr std::size_t kBatch = 4096;
  UpdateReport report;
  WallTimer timer;
  const VertexId n = base.num_vertices();

  std::vector<Edge> pending;
  bool pending_remove = false;
  auto flush = [&] {
    if (pending.empty()) return;
    report.rows_recomputed +=
        apply(std::span<const Edge>(pending), pending_remove);
    pending.clear();
  };
  auto push_op = [&](const Edge& e, bool remove) {
    if (!pending.empty() && pending_remove != remove) flush();
    pending_remove = remove;
    pending.push_back(e);
    if (pending.size() >= kBatch) flush();
  };

  // Session presence relative to the immutable base CSR — mirrors the
  // overlay's own invariants (re-adding a tombstoned base edge clears
  // the tombstone; removing a session insert erases it).
  std::unordered_set<Edge, EdgeHash> added;
  std::unordered_set<Edge, EdgeHash> tombed;
  auto present = [&](const Edge& e) {
    return added.contains(e) ||
           (base.has_edge(e.src, e.dst) && !tombed.contains(e));
  };
  auto mark_insert = [&](const Edge& e) {
    if (tombed.erase(e) == 0) added.insert(e);
  };
  auto mark_remove = [&](const Edge& e) {
    if (added.erase(e) == 0) tombed.insert(e);
  };

  // Sliding window over the applied stream inserts. A re-streamed edge
  // keeps only its newest timestamp: the stamp map invalidates the
  // older FIFO entry, which is skipped when it surfaces.
  std::unordered_set<Edge, EdgeHash> live;  // in-window edges
  std::unordered_map<Edge, std::uint64_t, EdgeHash> stamp;
  std::deque<std::pair<Edge, std::uint64_t>> order;
  std::uint64_t seq = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') ++p;
    bool remove = false;
    if (*p == '-') {
      remove = true;
      ++p;
    }
    char* end = nullptr;
    const unsigned long long u = std::strtoull(p, &end, 10);
    if (end == p || *p == '-') {  // no digits, or "--": malformed
      ++report.skipped;
      continue;
    }
    char* end2 = nullptr;
    const unsigned long long v = std::strtoull(end, &end2, 10);
    if (end2 == end || *end == '-') {
      ++report.skipped;
      continue;
    }
    if (u >= n || v >= n || u == v) {
      ++report.skipped;
      continue;
    }
    const Edge e{static_cast<VertexId>(u), static_cast<VertexId>(v)};
    if (remove) {
      if (!present(e)) {
        ++report.unknown_removes;
        continue;
      }
      mark_remove(e);
      live.erase(e);
      push_op(e, true);
      ++report.removed;
      continue;
    }
    if (present(e)) {
      ++report.skipped;
      continue;
    }
    mark_insert(e);
    push_op(e, false);
    ++report.applied;
    if (window == 0) continue;
    live.insert(e);
    stamp[e] = ++seq;
    order.emplace_back(e, seq);
    while (live.size() > window) {
      const auto [old, s] = order.front();
      order.pop_front();
      const auto it = stamp.find(old);
      // A stale FIFO entry: the edge was re-streamed (newer stamp) or
      // explicitly removed already.
      if (it == stamp.end() || it->second != s || !live.contains(old)) {
        continue;
      }
      live.erase(old);
      mark_remove(old);
      push_op(old, true);
      ++report.expired;
    }
  }
  flush();
  report.wall_s = timer.seconds();
  return report;
}

/// --update with --serve-shards: LIVE sharded serving. Stands the
/// cluster up over (model, graph), streams the file's inserts through
/// the update plane (serve/update_router.hpp) — every batch fans out to
/// all shards, each recomputes its owned share of the stale rows, no
/// freeze, no re-shard — then answers --query through the same router.
/// cache_mb > 0 adds a versioned hot-row cache per shard; republished
/// rows retire from it by version key automatically.
int serve_live_sharded(
    std::shared_ptr<const snaple::PredictorModel> model,
    std::shared_ptr<const snaple::CsrGraph> graph, std::istream& updates,
    std::size_t shards, snaple::serve::TransportKind transport,
    std::uint16_t tcp_port, std::size_t cache_mb, std::size_t batch,
    std::size_t window, const std::string& query_list, bool have_query,
    std::ostream& out) {
  using namespace snaple;
  using namespace snaple::serve;
  ServeOptions options;
  options.num_shards = shards;
  options.transport = transport;
  options.tcp_port = tcp_port;
  options.colocate = false;  // live rows cannot be replicated fresh
  if (cache_mb > 0) options.cache_bytes = cache_mb << 20;

  std::unique_ptr<ServingCluster> cluster;
  try {
    cluster = std::make_unique<ServingCluster>(model, graph, options);
  } catch (const CheckError& e) {
    std::cerr << "cannot serve live: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "live serving over " << shards << " shards ("
            << to_string(transport) << " transport, "
            << (cache_mb > 0 ? std::to_string(cache_mb) +
                                   " MB hot-row cache/shard"
                             : "no cache")
            << ")\n";

  // Stream the operations through the update plane, same skip rules as
  // the in-process flow (stream_edge_ops above): the CLI pre-screens
  // lines so every submitted batch passes the shards' deterministic
  // validation.
  UpdateRouter& plane = cluster->update_router();
  UpdateReport report;
  try {
    report = stream_edge_ops(
        updates, *graph, window,
        [&](std::span<const Edge> b, bool remove) -> std::size_t {
          if (remove) {
            plane.remove(b);
          } else {
            plane.apply(b);
          }
          return 0;  // the plane's own counters report the row work
        });
  } catch (const std::exception& e) {
    std::cerr << "live update failed: " << e.what() << "\n";
    return 1;
  }
  // Quiescence point: every shard confirmed at the same version — from
  // here every answer is bit-identical to a live-graph refit.
  const std::uint64_t version = plane.barrier();

  const UpdateStats us = plane.stats();
  const std::size_t ops = report.applied + report.removed + report.expired;
  std::cerr << "applied " << report.applied << " inserts, "
            << report.removed << " removals";
  if (window > 0) {
    std::cerr << " + " << report.expired << " window expirations";
  }
  std::cerr << " (" << report.skipped
            << " skipped: duplicate/self-loop/out-of-range/malformed, "
            << report.unknown_removes << " removals of absent edges) in "
            << format_duration(report.wall_s);
  if (ops > 0) {
    std::cerr << " — "
              << Table::fmt(report.wall_s * 1e6 / static_cast<double>(ops),
                            1)
              << " us/op";
  }
  std::cerr << "\nupdate plane: " << us.batches + us.remove_batches
            << " batches, "
            << us.gamma_rows + us.sims_rows + us.hop2_rows
            << " stale rows republished (" << us.gamma_rows << " gamma, "
            << us.sims_rows << " sims, " << us.hop2_rows << " hop2), "
            << us.bytes_sent << " B out, " << us.bytes_received
            << " B in; cluster version " << version << "\n";

  int rc = 0;
  if (have_query) {
    rc = serve_queries(cluster->router(), query_list, 0, batch, out);
    std::uint64_t queries = 0;
    std::uint64_t overlay_bytes = 0;
    for (const auto& s : cluster->stats()) {
      queries += s.queries;
      overlay_bytes += s.overlay_bytes;
    }
    const auto rs = cluster->router().stats();
    std::cerr << "shards answered " << queries << " queries ("
              << rs.requests << " wire messages), +"
              << static_cast<double>(overlay_bytes) / 1e6
              << " MB live overlays\n";
    if (cache_mb > 0) {
      const RowCacheStats cs = cluster->cache_stats();
      std::cerr << "hot-row cache: " << cs.hits << " hits / "
                << cs.hits + cs.misses << " lookups, " << cs.stale_drops
                << " stale drops\n";
    }
  }
  return rc;
}

UpdateReport stream_updates(snaple::DynamicModel& dyn, std::istream& in,
                            std::size_t window) {
  using namespace snaple;
  return stream_edge_ops(
      in, dyn.graph().base(), window,
      [&](std::span<const Edge> b, bool remove) -> std::size_t {
        const auto stats = remove ? dyn.remove_edges(b) : dyn.add_edges(b);
        return stats.gamma_rows + stats.sims_rows + stats.hop2_rows;
      });
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <edge-list-file | gowalla|pokec|orkut|livejournal|twitter>"
               " [--symmetrize] [--score=NAME] [--k=N] [--klocal=N|inf]"
               " [--thr=N|inf] [--khops=2|3] [--hop2min=F] [--machines=N]"
               " [--partition=hash|greedy|local] [--flat] [--type2]"
               " [--eval] [--seed=N] [--out=FILE] [--threads=N]"
               " [--convert=FILE] [--save-bin=FILE] [--compress]\n"
               "   or: " << argv0
            << " <graph> --fit [--save-model=FILE] [--query=U1,U2,...]\n"
               "   or: " << argv0
            << " --load-model=FILE --query=U1,U2,... [--k=N]"
               " [--serve-shards=N] [--serve-transport=mem|uds|tcp[:port]]"
               " [--serve-cache-mb=N] [--serve-batch=N]\n"
               "   or: " << argv0
            << " <graph> --update=EDGE-FILE [--window=N]"
               " [--query=U1,U2,...]"
               " [--save-model=FILE | --serve-shards=N]\n"
               "       (update lines: \"u v\" inserts, \"-u v\" removes)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snaple;
  if (argc < 2) return usage(argv[0]);

  std::string input;
  bool symmetrize = false;
  bool type2 = false;
  bool evaluate = false;
  bool flat = false;
  bool fit_only = false;
  bool compress = false;
  auto strategy = gas::PartitionStrategy::kGreedy;
  std::size_t machines = 1;
  std::size_t threads = 0;
  std::string out_path;
  std::string convert_path;
  std::string save_bin_path;
  std::string save_model_path;
  std::string load_model_path;
  std::string update_path;
  std::size_t update_window = 0;  // 0 = no sliding window
  std::string query_list;
  std::size_t serve_shards = 0;  // 0 = in-process QueryEngine serving
  auto serve_transport = serve::TransportKind::kInProcess;
  std::uint16_t serve_tcp_port = 0;  // 0 = kernel-chosen ephemeral
  std::size_t serve_cache_mb = 0;  // 0 = colocated rows, no cache
  std::size_t serve_batch = 1;     // 1 = per-query round trips
  bool have_query = false;
  bool have_k = false;
  bool have_partition = false;
  SnapleConfig config;
  config.k_local = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    try {
      if (!arg.empty() && arg[0] != '-') {
        if (!input.empty()) {
          std::cerr << "two inputs given: '" << input << "' and '" << arg
                    << "'\n";
          return usage(argv[0]);
        }
        input = arg;
      } else if (arg == "--symmetrize") {
        symmetrize = true;
      } else if (arg == "--type2") {
        type2 = true;
      } else if (arg == "--eval") {
        evaluate = true;
      } else if (arg == "--fit") {
        fit_only = true;
      } else if (arg.rfind("--score=", 0) == 0) {
        config.score = parse_score_kind(value_of("--score="));
      } else if (arg.rfind("--k=", 0) == 0) {
        config.k = parse_limit(value_of("--k="));
        have_k = true;
      } else if (arg.rfind("--klocal=", 0) == 0) {
        config.k_local = parse_limit(value_of("--klocal="));
      } else if (arg.rfind("--thr=", 0) == 0) {
        config.thr_gamma = parse_limit(value_of("--thr="));
      } else if (arg.rfind("--khops=", 0) == 0) {
        config.k_hops = parse_limit(value_of("--khops="));
        SNAPLE_CHECK_MSG(config.k_hops == 2 || config.k_hops == 3,
                         "--khops must be 2 or 3");
      } else if (arg.rfind("--hop2min=", 0) == 0) {
        config.hop2_min_score = std::atof(value_of("--hop2min=").c_str());
      } else if (arg.rfind("--machines=", 0) == 0) {
        machines = parse_limit(value_of("--machines="));
      } else if (arg.rfind("--partition=", 0) == 0) {
        const std::string s = value_of("--partition=");
        if (s == "hash") {
          strategy = gas::PartitionStrategy::kHash;
        } else if (s == "greedy") {
          strategy = gas::PartitionStrategy::kGreedy;
        } else if (s == "local") {
          strategy = gas::PartitionStrategy::kEdgeLocal;
        } else {
          std::cerr << "--partition must be hash, greedy or local\n";
          return 2;
        }
        have_partition = true;
      } else if (arg == "--flat") {
        flat = true;
      } else if (arg == "--compress") {
        compress = true;
      } else if (arg.rfind("--seed=", 0) == 0) {
        config.seed = std::strtoull(value_of("--seed=").c_str(), nullptr, 10);
      } else if (arg.rfind("--out=", 0) == 0) {
        out_path = value_of("--out=");
      } else if (arg.rfind("--threads=", 0) == 0) {
        threads = parse_limit(value_of("--threads="));
      } else if (arg.rfind("--convert=", 0) == 0) {
        convert_path = value_of("--convert=");
      } else if (arg.rfind("--save-bin=", 0) == 0) {
        save_bin_path = value_of("--save-bin=");
      } else if (arg.rfind("--save-model=", 0) == 0) {
        save_model_path = value_of("--save-model=");
      } else if (arg.rfind("--load-model=", 0) == 0) {
        load_model_path = value_of("--load-model=");
      } else if (arg.rfind("--update=", 0) == 0) {
        update_path = value_of("--update=");
      } else if (arg.rfind("--window=", 0) == 0) {
        update_window = parse_limit(value_of("--window="));
        SNAPLE_CHECK_MSG(update_window >= 1 && update_window != kUnlimited,
                         "--window must be a positive insert count");
      } else if (arg.rfind("--query=", 0) == 0) {
        query_list = value_of("--query=");
        have_query = true;
      } else if (arg.rfind("--serve-shards=", 0) == 0) {
        serve_shards = parse_limit(value_of("--serve-shards="));
        SNAPLE_CHECK_MSG(serve_shards >= 1 && serve_shards != kUnlimited,
                         "--serve-shards must be a positive count");
      } else if (arg.rfind("--serve-transport=", 0) == 0) {
        const std::string t = value_of("--serve-transport=");
        if (t == "mem") {
          serve_transport = serve::TransportKind::kInProcess;
        } else if (t == "uds") {
          serve_transport = serve::TransportKind::kUnixSocket;
        } else if (t == "tcp" || t.rfind("tcp:", 0) == 0) {
          serve_transport = serve::TransportKind::kTcp;
          if (t.size() > 4) {
            const unsigned long port =
                std::strtoul(t.c_str() + 4, nullptr, 10);
            SNAPLE_CHECK_MSG(port >= 1 && port <= 65535,
                             "--serve-transport=tcp:PORT needs a port "
                             "in [1, 65535]");
            serve_tcp_port = static_cast<std::uint16_t>(port);
          }
        } else {
          std::cerr << "--serve-transport must be mem, uds or "
                       "tcp[:port]\n";
          return 2;
        }
      } else if (arg.rfind("--serve-cache-mb=", 0) == 0) {
        serve_cache_mb = parse_limit(value_of("--serve-cache-mb="));
        SNAPLE_CHECK_MSG(serve_cache_mb >= 1 && serve_cache_mb != kUnlimited,
                         "--serve-cache-mb must be a positive MB count");
      } else if (arg.rfind("--serve-batch=", 0) == 0) {
        serve_batch = parse_limit(value_of("--serve-batch="));
        SNAPLE_CHECK_MSG(serve_batch >= 1 && serve_batch != kUnlimited,
                         "--serve-batch must be a positive count");
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const CheckError& e) {
      std::cerr << "bad option " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }

  const bool serving = fit_only || have_query || !save_model_path.empty() ||
                       !load_model_path.empty() || !update_path.empty() ||
                       serve_shards > 0;
  if (serving && evaluate) {
    std::cerr << "--eval applies to the batch flow only\n";
    return 2;
  }
  if (compress && (serving || evaluate)) {
    // The fit/serve and eval flows mutate or harvest the flat graph;
    // decompressing behind the user's back would defeat the flag.
    std::cerr << "--compress applies to conversion and the batch flow "
                 "only\n";
    return 2;
  }
  if (serve_cache_mb > 0 && serve_shards == 0) {
    std::cerr << "--serve-cache-mb caches the sharded tier's remote "
                 "fetches; pass --serve-shards=N too\n";
    return 2;
  }
  if (update_window > 0 && update_path.empty()) {
    std::cerr << "--window slides over the --update stream; pass "
                 "--update=FILE too\n";
    return 2;
  }
  if (!update_path.empty()) {
    if (!load_model_path.empty()) {
      std::cerr << "--update needs the fit graph; fit it here instead of "
                   "--load-model (a saved model carries no graph)\n";
      return 2;
    }
    // Incremental updates require the insertion-stable edge placement
    // (tags of existing edges must survive inserts); single-machine
    // runs qualify under any strategy because every tag is 0.
    if (!have_partition) {
      strategy = gas::PartitionStrategy::kEdgeLocal;
    } else if (strategy != gas::PartitionStrategy::kEdgeLocal &&
               machines > 1) {
      std::cerr << "--update on --machines>1 requires --partition=local "
                   "(hash/greedy tags shift when edges are inserted)\n";
      return 2;
    }
  }
  if (load_model_path.empty() && input.empty()) {
    std::cerr << "no input graph (or --load-model) given\n";
    return usage(argv[0]);
  }
  if (!load_model_path.empty() && !input.empty()) {
    std::cerr << "--load-model serves a finished model; drop the graph "
                 "argument (it would be ignored)\n";
    return 2;
  }

  // A dedicated pool when --threads is given; the default pool otherwise.
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = nullptr;
  if (threads > 1 && threads != kUnlimited) {
    own_pool = std::make_unique<ThreadPool>(threads - 1);
    pool = own_pool.get();
  }

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out = &out_file;
  }

  // ---- Serve from a saved model: no graph, no fit. ----
  if (!load_model_path.empty()) {
    std::shared_ptr<const PredictorModel> model;
    try {
      WallTimer load_timer;
      model = std::make_shared<const PredictorModel>(
          PredictorModel::load_file(load_model_path));
      std::cerr << "loaded model: " << model->num_vertices()
                << " vertices, "
                << static_cast<double>(model->memory_bytes()) / 1e6
                << " MB, config [" << model->config().describe() << "] (in "
                << format_duration(load_timer.seconds()) << ")\n";
    } catch (const std::exception& e) {
      std::cerr << "cannot load model '" << load_model_path
                << "': " << e.what() << "\n";
      return 1;
    }
    if (!have_query) {
      std::cerr << "model loaded; pass --query=u1,u2,... to serve\n";
      return 0;
    }
    // An explicit --k overrides the model's configured k (0 = model's).
    const std::size_t serve_k = have_k ? config.k : 0;
    if (serve_shards > 0) {
      return serve_sharded(*model, serve_shards, serve_transport,
                           serve_tcp_port, serve_cache_mb, serve_batch,
                           nullptr, query_list, serve_k, *out);
    }
    const QueryEngine server(model);
    return serve_queries(server, query_list, serve_k, serve_batch, *out);
  }

  CsrGraph graph;
  CompressedCsrGraph cgraph;  // the graph when --compress is in effect
  bool have_cgraph = false;
  WallTimer load_timer;
  try {
    if (file_exists(input)) {
      if (is_binary_graph(input)) {
        if (symmetrize) {
          // Binary graphs are finished CSRs; silently ignoring the flag
          // would evaluate on a graph the user did not ask for.
          std::cerr << "--symmetrize does not apply to binary graphs; "
                       "symmetrize when converting the text file instead\n";
          return 2;
        }
        std::cerr << "loading binary graph " << input << "...\n";
        if (compress) {
          // v3 inputs load natively compressed — the flat adjacency is
          // never materialized; v1/v2 are compressed after loading.
          cgraph = load_binary_compressed_file(input);
          have_cgraph = true;
        } else {
          graph = load_binary_file(input);
        }
      } else if (threads == 1) {
        // An explicit --threads=1 means truly serial: use the reference
        // stream loader rather than the chunked parallel one.
        std::cerr << "loading edge list " << input << " (serial)...\n";
        std::ifstream in(input);
        graph = load_edge_list_text(in, symmetrize);
      } else {
        std::cerr << "loading edge list " << input << "...\n";
        graph = load_edge_list_text_file(input, symmetrize, pool);
      }
    } else {
      std::cerr << "generating replica " << input << "...\n";
      graph = gen::load_or_generate(input, 0.25, config.seed);
    }
  } catch (const std::exception& e) {
    std::cerr << "cannot load '" << input << "': " << e.what() << "\n";
    return 1;
  }
  if (compress && !have_cgraph) {
    cgraph = CompressedCsrGraph::from_graph(graph, pool);
    graph = CsrGraph{};  // release the flat adjacency
    have_cgraph = true;
  }
  const VertexId num_vertices =
      have_cgraph ? cgraph.num_vertices() : graph.num_vertices();
  const EdgeIndex num_edges =
      have_cgraph ? cgraph.num_edges() : graph.num_edges();
  std::cerr << "graph: " << num_vertices << " vertices, " << num_edges
            << " edges (loaded in " << format_duration(load_timer.seconds())
            << ")\n";
  if (have_cgraph) {
    const auto flat_bytes =
        static_cast<double>(num_edges) * 2 * sizeof(VertexId);
    const auto packed = static_cast<double>(cgraph.adjacency_bytes());
    std::cerr << "compressed adjacency: "
              << Table::fmt(packed / 1e6, 2) << " MB vs "
              << Table::fmt(flat_bytes / 1e6, 2) << " MB flat ("
              << Table::fmt(packed > 0 ? flat_bytes / packed : 1.0, 2)
              << "x)\n";
  }

  const std::string bin_out =
      !convert_path.empty() ? convert_path : save_bin_path;
  if (!bin_out.empty()) {
    try {
      if (have_cgraph) {
        save_binary_v3_file(cgraph, bin_out);
        std::cerr << "wrote binary v3 (compressed) graph to " << bin_out
                  << "\n";
      } else {
        save_binary_file(graph, bin_out);
        std::cerr << "wrote binary v2 graph to " << bin_out << "\n";
      }
    } catch (const IoError& e) {
      std::cerr << "cannot write '" << bin_out << "': " << e.what() << "\n";
      return 1;
    }
    if (!convert_path.empty()) return 0;  // conversion-only run
  }

  std::vector<Edge> hidden;
  if (evaluate) {
    auto holdout = eval::remove_random_edges(graph, 1, config.seed);
    graph = std::move(holdout.train);
    hidden = std::move(holdout.hidden);
    std::cerr << "hidden " << hidden.size() << " edges for evaluation\n";
  }

  const auto cluster =
      machines <= 1
          ? gas::ClusterConfig::single_machine(
                std::thread::hardware_concurrency())
          : (type2 ? gas::ClusterConfig::type_ii(machines)
                   : gas::ClusterConfig::type_i(machines));
  // Multi-machine runs use the sharded engine unless --flat opts out:
  // each simulated machine owns its graph shard and replica-local vertex
  // data, and traffic is measured from the exchange buffers.
  const auto exec = (machines > 1 && !flat) ? gas::ExecutionMode::kSharded
                                            : gas::ExecutionMode::kFlat;

  const auto partitioning =
      have_cgraph ? gas::Partitioning::create(cgraph, cluster.num_machines,
                                              strategy, config.seed)
                  : gas::Partitioning::create(graph, cluster.num_machines,
                                              strategy, config.seed);
  std::shared_ptr<const gas::ShardTopology> topo;
  if (exec == gas::ExecutionMode::kSharded) {
    // Per-shard layout report: what each simulated machine actually
    // owns. The layout is reused by the runs below. Compressed runs get
    // compressed shard slices too (the build overload's default).
    topo = std::make_shared<const gas::ShardTopology>(
        have_cgraph ? gas::ShardTopology::build(cgraph, partitioning)
                    : gas::ShardTopology::build(graph, partitioning));
    Table shard_table({"shard", "edges", "replicas", "masters", "mirrors",
                       "structure MB"});
    for (const auto& sh : topo->shards()) {
      shard_table.add_row(
          {std::to_string(sh.machine()),
           std::to_string(sh.num_local_edges()),
           std::to_string(sh.num_local()), std::to_string(sh.num_masters()),
           std::to_string(sh.num_mirrors()),
           Table::fmt(static_cast<double>(sh.memory_bytes()) / 1e6, 2)});
    }
    const char* strategy_name =
        strategy == gas::PartitionStrategy::kGreedy  ? "greedy"
        : strategy == gas::PartitionStrategy::kHash ? "hash"
                                                    : "local";
    std::cerr << "shards (replication factor "
              << Table::fmt(partitioning.replication_factor(), 2) << ", "
              << strategy_name << " vertex-cut):\n";
    shard_table.print(std::cerr);
  }

  std::cerr << "config: " << config.describe() << "\n";
  std::cerr << "cluster: " << cluster.describe() << " ("
            << (exec == gas::ExecutionMode::kSharded ? "sharded" : "flat")
            << " execution)\n";

  // ---- Fit/serve flow: build the model, optionally save and query. ----
  if (serving) {
    const LinkPredictor predictor(config, cluster, strategy, exec);
    PredictorModel model;
    try {
      WallTimer fit_timer;
      model = predictor.fit_with_partitioning(graph, partitioning, pool,
                                              topo);
      std::cerr << "fitted model in " << format_duration(fit_timer.seconds())
                << ": " << static_cast<double>(model.memory_bytes()) / 1e6
                << " MB, fit traffic "
                << static_cast<double>(
                       model.fit_report().total_net_bytes()) / 1e6
                << " MB\n";
    } catch (const ResourceExhausted& e) {
      std::cerr << "simulated cluster out of memory: " << e.what() << "\n";
      return 1;
    }
    // ---- Incremental updates: wrap the model, stream the inserts. ----
    if (!update_path.empty()) {
      std::ifstream updates(update_path);
      if (!updates) {
        std::cerr << "cannot read update file '" << update_path << "'\n";
        return 1;
      }
      const auto shared_graph =
          std::make_shared<const CsrGraph>(std::move(graph));
      if (serve_shards > 0) {
        // The sharded tier's LIVE update plane: inserts fan out to the
        // shards, which recompute in place — no freeze, no re-shard.
        if (!save_model_path.empty()) {
          std::cerr << "--save-model does not combine with --update "
                       "--serve-shards: the updated rows live on the "
                       "shards (drop --serve-shards to freeze a file)\n";
          return 2;
        }
        return serve_live_sharded(
            std::make_shared<const PredictorModel>(std::move(model)),
            shared_graph, updates, serve_shards, serve_transport,
            serve_tcp_port, serve_cache_mb, serve_batch, update_window,
            query_list, have_query, *out);
      }
      std::shared_ptr<DynamicModel> wrapped;
      UpdateReport report;
      try {
        // The partitioning above was created with config.seed, which is
        // also DynamicModel's default placement seed.
        wrapped = std::make_shared<DynamicModel>(
            std::make_shared<const PredictorModel>(std::move(model)),
            shared_graph, std::nullopt, pool);
        report = stream_updates(*wrapped, updates, update_window);
      } catch (const CheckError& e) {
        std::cerr << "update failed: " << e.what() << "\n";
        return 1;
      }
      DynamicModel& dyn = *wrapped;
      const std::size_t ops =
          report.applied + report.removed + report.expired;
      std::cerr << "applied " << report.applied << " inserts, "
                << report.removed << " removals";
      if (update_window > 0) {
        std::cerr << " + " << report.expired << " window expirations";
      }
      std::cerr << " (" << report.skipped << " skipped: duplicate/"
                << "self-loop/out-of-range/malformed, "
                << report.unknown_removes
                << " removals of absent edges) in "
                << format_duration(report.wall_s);
      if (ops > 0) {
        std::cerr << " — "
                  << Table::fmt(report.wall_s * 1e6 /
                                    static_cast<double>(ops), 1)
                  << " us/op, " << report.rows_recomputed
                  << " rows recomputed";
      }
      std::cerr << "; model version " << dyn.version() << ", +"
                << static_cast<double>(dyn.overlay_bytes()) / 1e6
                << " MB overlay\n";
      if (!save_model_path.empty()) {
        try {
          dyn.freeze().save_file(save_model_path);
          std::cerr << "wrote updated model to " << save_model_path << "\n";
        } catch (const IoError& e) {
          std::cerr << "cannot write '" << save_model_path
                    << "': " << e.what() << "\n";
          return 1;
        }
      }
      if (have_query) {
        // Serve straight from the live model's versioned rows (the
        // serve_shards>0 combination took the live sharded path above).
        const QueryEngine server{
            std::shared_ptr<const DynamicModel>(wrapped)};
        return serve_queries(server, query_list, 0, serve_batch, *out);
      }
      return 0;
    }
    if (!save_model_path.empty()) {
      try {
        model.save_file(save_model_path);
        std::cerr << "wrote model to " << save_model_path << "\n";
      } catch (const IoError& e) {
        std::cerr << "cannot write '" << save_model_path
                  << "': " << e.what() << "\n";
        return 1;
      }
    }
    if (have_query) {
      if (serve_shards > 0) {
        return serve_sharded(model, serve_shards, serve_transport,
                             serve_tcp_port, serve_cache_mb, serve_batch,
                             nullptr, query_list, 0, *out);
      }
      const QueryEngine server(
          std::make_shared<const PredictorModel>(std::move(model)));
      return serve_queries(server, query_list, 0, serve_batch, *out);
    }
    return 0;
  }

  // ---- Batch flow: the fully-accounted three-step engine run. ----
  SnapleResult result;
  WallTimer run_timer;
  try {
    result = have_cgraph
                 ? run_snaple(cgraph, config, partitioning, cluster, pool,
                              gas::ApplyMode::kFused, exec, topo)
                 : run_snaple(graph, config, partitioning, cluster, pool,
                              gas::ApplyMode::kFused, exec, topo);
  } catch (const ResourceExhausted& e) {
    std::cerr << "simulated cluster out of memory: " << e.what() << "\n";
    return 1;
  }
  const double wall_seconds = run_timer.seconds();

  std::cerr << "host time: " << format_duration(wall_seconds)
            << ", simulated time: "
            << format_duration(result.report.total_sim_s()) << ", traffic: "
            << static_cast<double>(result.report.total_net_bytes()) / 1e6
            << " MB\n";
  if (exec == gas::ExecutionMode::kSharded) {
    std::size_t acc_peak = 0;
    std::size_t vd_peak = 0;
    for (const auto& s : result.report.steps) {
      acc_peak = std::max(acc_peak, s.accumulator_bytes_peak);
      vd_peak = std::max(vd_peak, s.vertex_data_bytes_peak);
    }
    std::cerr << "per-shard peaks: accumulators "
              << static_cast<double>(acc_peak) / 1e6
              << " MB, replicated vertex data "
              << static_cast<double>(vd_peak) / 1e6 << " MB\n";
  }
  if (evaluate) {
    std::cerr << "recall@" << config.k << ": "
              << eval::recall(result.predictions, hidden) << ", MRR: "
              << eval::mean_reciprocal_rank(result.predictions, hidden)
              << "\n";
  }

  for (VertexId u = 0; u < num_vertices; ++u) {
    if (result.predictions[u].empty()) continue;
    (*out) << u << ':';
    for (VertexId z : result.predictions[u]) (*out) << ' ' << z;
    (*out) << '\n';
  }
  return 0;
}
