// snaple_cli — run link prediction on any graph from the command line.
//
//   $ ./snaple_cli <edge-list-file | replica-name> [options]
//
//   --symmetrize        treat the input edge list as undirected
//   --score=<name>      Table-3 scoring method        [linearSum]
//   --k=<n>             predictions per vertex        [5]
//   --klocal=<n|inf>    sampling parameter            [20]
//   --thr=<n|inf>       truncation threshold          [200]
//   --khops=<2|3>       path length                   [2]
//   --machines=<n>      simulated cluster size        [1]
//   --partition=<s>     vertex-cut strategy: hash|greedy   [greedy]
//   --flat              accounted-only engine (default: --machines>1
//                       runs truly sharded — per-machine graph shards,
//                       replica-local vertex data, explicit message
//                       exchange — and prints per-shard stats)
//   --type2             use type-II machines (else type-I / single)
//   --eval              hide one edge per vertex first and report recall
//   --seed=<n>          RNG seed                      [1]
//   --out=<file>        write "u: z1 z2 ..." lines    [stdout]
//   --threads=<n>       loader thread count           [hardware]
//   --convert=<file>    write input as binary v2 and exit
//   --save-bin=<file>   also write loaded graph as binary v2
//
// Input files may be SNAP-style text edge lists (loaded with the
// parallel mmap loader) or snaple binary graphs (v1 or v2, autodetected
// by magic) — convert a big text file once with --convert and every
// later run loads the CSR arrays directly.
//
// Examples:
//   ./snaple_cli livejournal --eval --klocal=40
//   ./snaple_cli soc-pokec.txt --score=counter --machines=8 --type2
//   ./snaple_cli twitter_rv.net --convert=twitter.bin
//   ./snaple_cli twitter.bin --eval
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/predictor.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "gas/shard.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

std::size_t parse_limit(const std::string& value) {
  if (value == "inf") return snaple::kUnlimited;
  return std::strtoull(value.c_str(), nullptr, 10);
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// True if the file starts with a snaple binary-graph magic ("SNAPLEG?").
bool is_binary_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[7] = {};
  in.read(magic, sizeof(magic));
  return in && std::string(magic, sizeof(magic)) == "SNAPLEG";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <edge-list-file | gowalla|pokec|orkut|livejournal|twitter>"
               " [--symmetrize] [--score=NAME] [--k=N] [--klocal=N|inf]"
               " [--thr=N|inf] [--khops=2|3] [--machines=N]"
               " [--partition=hash|greedy] [--flat] [--type2]"
               " [--eval] [--seed=N] [--out=FILE] [--threads=N]"
               " [--convert=FILE] [--save-bin=FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snaple;
  if (argc < 2) return usage(argv[0]);

  const std::string input = argv[1];
  bool symmetrize = false;
  bool type2 = false;
  bool evaluate = false;
  bool flat = false;
  auto strategy = gas::PartitionStrategy::kGreedy;
  std::size_t machines = 1;
  std::size_t threads = 0;
  std::string out_path;
  std::string convert_path;
  std::string save_bin_path;
  SnapleConfig config;
  config.k_local = 20;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    try {
      if (arg == "--symmetrize") {
        symmetrize = true;
      } else if (arg == "--type2") {
        type2 = true;
      } else if (arg == "--eval") {
        evaluate = true;
      } else if (arg.rfind("--score=", 0) == 0) {
        config.score = parse_score_kind(value_of("--score="));
      } else if (arg.rfind("--k=", 0) == 0) {
        config.k = parse_limit(value_of("--k="));
      } else if (arg.rfind("--klocal=", 0) == 0) {
        config.k_local = parse_limit(value_of("--klocal="));
      } else if (arg.rfind("--thr=", 0) == 0) {
        config.thr_gamma = parse_limit(value_of("--thr="));
      } else if (arg.rfind("--khops=", 0) == 0) {
        config.k_hops = parse_limit(value_of("--khops="));
        SNAPLE_CHECK_MSG(config.k_hops == 2 || config.k_hops == 3,
                         "--khops must be 2 or 3");
      } else if (arg.rfind("--machines=", 0) == 0) {
        machines = parse_limit(value_of("--machines="));
      } else if (arg.rfind("--partition=", 0) == 0) {
        const std::string s = value_of("--partition=");
        if (s == "hash") {
          strategy = gas::PartitionStrategy::kHash;
        } else if (s == "greedy") {
          strategy = gas::PartitionStrategy::kGreedy;
        } else {
          std::cerr << "--partition must be hash or greedy\n";
          return 2;
        }
      } else if (arg == "--flat") {
        flat = true;
      } else if (arg.rfind("--seed=", 0) == 0) {
        config.seed = std::strtoull(value_of("--seed=").c_str(), nullptr, 10);
      } else if (arg.rfind("--out=", 0) == 0) {
        out_path = value_of("--out=");
      } else if (arg.rfind("--threads=", 0) == 0) {
        threads = parse_limit(value_of("--threads="));
      } else if (arg.rfind("--convert=", 0) == 0) {
        convert_path = value_of("--convert=");
      } else if (arg.rfind("--save-bin=", 0) == 0) {
        save_bin_path = value_of("--save-bin=");
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const CheckError& e) {
      std::cerr << "bad option " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }

  // A dedicated pool when --threads is given; the default pool otherwise.
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = nullptr;
  if (threads > 1 && threads != kUnlimited) {
    own_pool = std::make_unique<ThreadPool>(threads - 1);
    pool = own_pool.get();
  }

  CsrGraph graph;
  WallTimer load_timer;
  try {
    if (file_exists(input)) {
      if (is_binary_graph(input)) {
        if (symmetrize) {
          // Binary graphs are finished CSRs; silently ignoring the flag
          // would evaluate on a graph the user did not ask for.
          std::cerr << "--symmetrize does not apply to binary graphs; "
                       "symmetrize when converting the text file instead\n";
          return 2;
        }
        std::cerr << "loading binary graph " << input << "...\n";
        graph = load_binary_file(input);
      } else if (threads == 1) {
        // An explicit --threads=1 means truly serial: use the reference
        // stream loader rather than the chunked parallel one.
        std::cerr << "loading edge list " << input << " (serial)...\n";
        std::ifstream in(input);
        graph = load_edge_list_text(in, symmetrize);
      } else {
        std::cerr << "loading edge list " << input << "...\n";
        graph = load_edge_list_text_file(input, symmetrize, pool);
      }
    } else {
      std::cerr << "generating replica " << input << "...\n";
      graph = gen::load_or_generate(input, 0.25, config.seed);
    }
  } catch (const std::exception& e) {
    std::cerr << "cannot load '" << input << "': " << e.what() << "\n";
    return 1;
  }
  std::cerr << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges (loaded in "
            << format_duration(load_timer.seconds()) << ")\n";

  const std::string bin_out =
      !convert_path.empty() ? convert_path : save_bin_path;
  if (!bin_out.empty()) {
    try {
      save_binary_file(graph, bin_out);
      std::cerr << "wrote binary v2 graph to " << bin_out << "\n";
    } catch (const IoError& e) {
      std::cerr << "cannot write '" << bin_out << "': " << e.what() << "\n";
      return 1;
    }
    if (!convert_path.empty()) return 0;  // conversion-only run
  }

  std::vector<Edge> hidden;
  if (evaluate) {
    auto holdout = eval::remove_random_edges(graph, 1, config.seed);
    graph = std::move(holdout.train);
    hidden = std::move(holdout.hidden);
    std::cerr << "hidden " << hidden.size() << " edges for evaluation\n";
  }

  const auto cluster =
      machines <= 1
          ? gas::ClusterConfig::single_machine(
                std::thread::hardware_concurrency())
          : (type2 ? gas::ClusterConfig::type_ii(machines)
                   : gas::ClusterConfig::type_i(machines));
  // Multi-machine runs use the sharded engine unless --flat opts out:
  // each simulated machine owns its graph shard and replica-local vertex
  // data, and traffic is measured from the exchange buffers.
  const auto exec = (machines > 1 && !flat) ? gas::ExecutionMode::kSharded
                                            : gas::ExecutionMode::kFlat;
  const LinkPredictor predictor(config, cluster, strategy, exec);

  const auto partitioning =
      gas::Partitioning::create(graph, cluster.num_machines, strategy,
                                config.seed);
  std::shared_ptr<const gas::ShardTopology> topo;
  if (exec == gas::ExecutionMode::kSharded) {
    // Per-shard layout report: what each simulated machine actually
    // owns. The layout is reused by the prediction run below.
    topo = std::make_shared<const gas::ShardTopology>(
        gas::ShardTopology::build(graph, partitioning));
    Table shard_table({"shard", "edges", "replicas", "masters", "mirrors",
                       "structure MB"});
    for (const auto& sh : topo->shards()) {
      shard_table.add_row(
          {std::to_string(sh.machine()),
           std::to_string(sh.num_local_edges()),
           std::to_string(sh.num_local()), std::to_string(sh.num_masters()),
           std::to_string(sh.num_mirrors()),
           Table::fmt(static_cast<double>(sh.memory_bytes()) / 1e6, 2)});
    }
    std::cerr << "shards (replication factor "
              << Table::fmt(partitioning.replication_factor(), 2) << ", "
              << (strategy == gas::PartitionStrategy::kGreedy ? "greedy"
                                                              : "hash")
              << " vertex-cut):\n";
    shard_table.print(std::cerr);
  }

  PredictionRun run;
  try {
    run = predictor.predict_with_partitioning(graph, partitioning, nullptr,
                                              topo);
  } catch (const ResourceExhausted& e) {
    std::cerr << "simulated cluster out of memory: " << e.what() << "\n";
    return 1;
  }

  std::cerr << "config: " << config.describe() << "\n";
  std::cerr << "cluster: " << cluster.describe() << " ("
            << (exec == gas::ExecutionMode::kSharded ? "sharded" : "flat")
            << " execution)\n";
  std::cerr << "host time: " << format_duration(run.wall_seconds)
            << ", simulated time: "
            << format_duration(run.simulated_seconds) << ", traffic: "
            << static_cast<double>(run.network_bytes) / 1e6 << " MB\n";
  if (exec == gas::ExecutionMode::kSharded) {
    std::size_t acc_peak = 0;
    std::size_t vd_peak = 0;
    for (const auto& s : run.report.steps) {
      acc_peak = std::max(acc_peak, s.accumulator_bytes_peak);
      vd_peak = std::max(vd_peak, s.vertex_data_bytes_peak);
    }
    std::cerr << "per-shard peaks: accumulators "
              << static_cast<double>(acc_peak) / 1e6
              << " MB, replicated vertex data "
              << static_cast<double>(vd_peak) / 1e6 << " MB\n";
  }
  if (evaluate) {
    std::cerr << "recall@" << config.k << ": "
              << eval::recall(run.predictions, hidden) << ", MRR: "
              << eval::mean_reciprocal_rank(run.predictions, hidden)
              << "\n";
  }

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out = &out_file;
  }
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    if (run.predictions[u].empty()) continue;
    (*out) << u << ':';
    for (VertexId z : run.predictions[u]) (*out) << ' ' << z;
    (*out) << '\n';
  }
  return 0;
}
