// Score-space explorer: sweep SNAPLE's full Table-3 design space.
//
//   $ ./score_explorer [dataset] [scale]
//
// SNAPLE is a scoring *framework*: a raw similarity, a combinator ⊗ and an
// aggregator ⊕ compose into a scoring method (§3). This tool sweeps all
// eleven Table-3 combinations on any replica and prints the recall/time
// frontier, so users can pick a configuration for their own workload the
// way §5.7 recommends (Sum for best recall, Mean for tight time budgets).
// A supervised scorer would slot into the same ScoreConfig seam — the
// extension path the paper's conclusion sketches.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/predictor.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "livejournal";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.08;

  const auto prepared = snaple::eval::prepare_dataset(dataset, scale, 99);
  std::cout << "dataset " << prepared.name << ": "
            << prepared.train.num_vertices() << " vertices, "
            << prepared.train.num_edges() << " edges\n\n";

  snaple::Table table(
      {"score", "sim", "combinator", "aggregator", "recall@5", "time (s)"});

  for (const snaple::ScoreKind kind : snaple::all_score_kinds()) {
    snaple::SnapleConfig config;
    config.score = kind;
    config.k_local = 40;
    const snaple::LinkPredictor predictor(config);
    const auto run = predictor.predict(prepared.train);
    const double recall =
        snaple::eval::recall(run.predictions, prepared.hidden);
    const auto sc = snaple::score_config(kind);
    table.add_row({sc.name, snaple::similarity_name(sc.metric),
                   sc.combinator.name(), sc.aggregator.name(),
                   snaple::Table::fmt(recall, 3),
                   snaple::Table::fmt(run.wall_seconds, 2)});
  }
  table.print(std::cout);
  std::cout << "\nGuideline from §5.7: Sum-aggregator scores give the best "
               "recall as klocal grows;\nMean-aggregator scores are "
               "competitive under tight time budgets at small klocal.\n";
  return 0;
}
