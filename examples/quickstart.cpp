// Quickstart: predict missing links on a small social graph.
//
//   $ ./quickstart
//
// Builds a toy friendship graph, runs SNAPLE with the default
// configuration (linearSum, k=5, klocal=20, thrΓ=200), and prints the
// predictions for a few users — the three-line API from predictor.hpp.
#include <iostream>

#include "core/predictor.hpp"
#include "eval/metrics.hpp"
#include "eval/protocol.hpp"
#include "graph/gen/generators.hpp"

int main() {
  // A synthetic 2000-person friendship network: power-law degrees with
  // strong triadic closure, like real social graphs.
  const snaple::CsrGraph graph =
      snaple::gen::holme_kim(/*n=*/2000, /*m=*/6, /*p_triad=*/0.6,
                             /*seed=*/7);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " directed edges\n\n";

  // Hide one friendship per user so we can check predictions afterwards.
  const snaple::eval::Holdout holdout =
      snaple::eval::remove_random_edges(graph, /*per_vertex=*/1, /*seed=*/13);

  // Configure and run SNAPLE. Defaults follow the paper: k=5 predictions,
  // the linearSum score (Jaccard + linear combinator + Sum aggregator).
  snaple::SnapleConfig config;
  config.k = 5;
  config.k_local = 20;

  const snaple::LinkPredictor predictor(config);
  const snaple::PredictionRun run = predictor.predict(holdout.train);

  std::cout << "predicted " << run.predictions.size() << " users in "
            << snaple::format_duration(run.wall_seconds) << "\n";
  std::cout << "recall on hidden friendships: "
            << snaple::eval::recall(run.predictions, holdout.hidden)
            << "\n\n";

  std::cout << "sample recommendations:\n";
  for (snaple::VertexId u = 0; u < 5; ++u) {
    std::cout << "  user " << u << " -> ";
    for (snaple::VertexId z : run.predictions[u]) std::cout << z << ' ';
    std::cout << '\n';
  }
  return 0;
}
