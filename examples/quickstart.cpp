// Quickstart: fit a link-prediction model once, serve queries on demand.
//
//   $ ./quickstart
//
// Builds a toy friendship graph, fits SNAPLE's model (steps 1–2 of
// Algorithm 2) with the default configuration (linearSum, k=5,
// klocal=20, thrΓ=200), and answers "who should user u befriend?"
// per user through a QueryEngine — the three-line serving API from
// predictor.hpp. One query reads only u's retained paths, so serving a
// request does NOT rerun the whole-graph batch pass.
#include <iostream>

#include "core/predictor.hpp"
#include "eval/metrics.hpp"
#include "eval/protocol.hpp"
#include "graph/gen/generators.hpp"
#include "util/timer.hpp"

int main() {
  // A synthetic 2000-person friendship network: power-law degrees with
  // strong triadic closure, like real social graphs.
  const snaple::CsrGraph graph =
      snaple::gen::holme_kim(/*n=*/2000, /*m=*/6, /*p_triad=*/0.6,
                             /*seed=*/7);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " directed edges\n\n";

  // Hide one friendship per user so we can check predictions afterwards.
  const snaple::eval::Holdout holdout =
      snaple::eval::remove_random_edges(graph, /*per_vertex=*/1, /*seed=*/13);

  // Fit once (the offline half), then serve (the online half).
  snaple::SnapleConfig config;
  config.k = 5;
  config.k_local = 20;

  const snaple::LinkPredictor predictor(config);
  snaple::WallTimer fit_timer;
  const auto model = std::make_shared<const snaple::PredictorModel>(
      predictor.fit(holdout.train));
  std::cout << "fitted model for " << model->num_vertices() << " users in "
            << snaple::format_duration(fit_timer.seconds()) << " ("
            << static_cast<double>(model->memory_bytes()) / 1e6
            << " MB; save()/load() ships it to serving machines)\n";

  const snaple::QueryEngine server(model);

  // Sanity-check quality the batch way: query every user and measure
  // recall on the hidden friendships.
  const auto predictions = snaple::prediction_lists(server.topk_all());
  std::cout << "recall on hidden friendships: "
            << snaple::eval::recall(predictions, holdout.hidden) << "\n\n";

  // The serving flow itself: one cheap query per request.
  std::cout << "sample recommendations (score in parentheses):\n";
  for (snaple::VertexId u = 0; u < 5; ++u) {
    std::cout << "  user " << u << " -> ";
    for (const auto& [z, score] : server.topk(u)) {
      std::cout << z << " (" << score << ") ";
    }
    std::cout << '\n';
  }
  return 0;
}
