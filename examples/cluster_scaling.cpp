// Cluster scaling walkthrough: the same workload across cluster sizes.
//
//   $ ./cluster_scaling [scale]
//
// Reproduces the experience behind Figure 5 interactively: partition the
// livejournal-s replica onto growing simulated type-I clusters, run the
// identical SNAPLE job, and watch simulated time fall while network
// traffic and replication rise — the fundamental distribution trade-off
// the paper quantifies. Also contrasts hash vs greedy vertex-cuts (the
// PowerGraph partitioning ablation from docs/ARCHITECTURE.md), and runs
// each configuration through BOTH engine modes: flat (distribution
// accounted over global arrays) and sharded (per-machine shards,
// replica-local data, explicit message exchange). The traffic columns
// are identical by construction — in sharded mode they are measured from
// the exchange buffers rather than tallied.
#include <cstdlib>
#include <iostream>

#include "core/snaple_program.hpp"
#include "eval/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  const auto dataset = snaple::eval::prepare_dataset("livejournal", scale, 3);
  std::cout << "workload: SNAPLE linearSum klocal=40 on "
            << dataset.train.num_edges() << " edges\n\n";

  snaple::SnapleConfig config;
  config.k_local = 40;

  snaple::Table table({"machines", "cores", "partitioner", "engine",
                       "repl.factor", "net MB", "sim time (s)"});

  for (const std::size_t machines : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    for (const auto strategy : {snaple::gas::PartitionStrategy::kGreedy,
                                snaple::gas::PartitionStrategy::kHash}) {
      if (machines == 1 &&
          strategy == snaple::gas::PartitionStrategy::kHash) {
        continue;  // identical to greedy on one machine
      }
      const auto cluster = snaple::gas::ClusterConfig::type_i(machines);
      // One partitioning per (machines, strategy) point, shared by both
      // engine modes — which is what makes their rows comparable.
      const auto partitioning = snaple::gas::Partitioning::create(
          dataset.train, machines, strategy, config.seed);
      for (const auto exec : {snaple::gas::ExecutionMode::kFlat,
                              snaple::gas::ExecutionMode::kSharded}) {
        // The engine-level batch primitive: this walkthrough is about
        // the per-step distributed accounting of all three GAS steps,
        // which fit+serve predict() intentionally does not model.
        const auto run =
            snaple::run_snaple(dataset.train, config, partitioning, cluster,
                               nullptr, snaple::gas::ApplyMode::kFused,
                               exec);
        table.add_row(
            {std::to_string(machines),
             std::to_string(cluster.total_cores()),
             strategy == snaple::gas::PartitionStrategy::kGreedy ? "greedy"
                                                                 : "hash",
             exec == snaple::gas::ExecutionMode::kFlat ? "flat" : "sharded",
             snaple::Table::fmt(partitioning.replication_factor(), 2),
             snaple::Table::fmt(
                 static_cast<double>(run.report.total_net_bytes()) / 1e6, 1),
             snaple::Table::fmt(run.report.total_sim_s(), 3)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nGreedy vertex-cuts keep the replication factor (and so "
               "the sync traffic) below\nhash placement, which is why "
               "PowerGraph-style engines default to them. The flat\nand "
               "sharded rows agree on traffic byte-for-byte: the sharded "
               "engine measures its\nexchange buffers, the flat engine "
               "tallies what those buffers would hold.\n";
  return 0;
}
