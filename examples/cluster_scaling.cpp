// Cluster scaling walkthrough: the same workload across cluster sizes.
//
//   $ ./cluster_scaling [scale]
//
// Reproduces the experience behind Figure 5 interactively: partition the
// livejournal-s replica onto growing simulated type-I clusters, run the
// identical SNAPLE job, and watch simulated time fall while network
// traffic and replication rise — the fundamental distribution trade-off
// the paper quantifies. Also contrasts hash vs greedy vertex-cuts (the
// PowerGraph partitioning ablation from docs/ARCHITECTURE.md).
#include <cstdlib>
#include <iostream>

#include "core/predictor.hpp"
#include "eval/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  const auto dataset = snaple::eval::prepare_dataset("livejournal", scale, 3);
  std::cout << "workload: SNAPLE linearSum klocal=40 on "
            << dataset.train.num_edges() << " edges\n\n";

  snaple::SnapleConfig config;
  config.k_local = 40;

  snaple::Table table({"machines", "cores", "partitioner", "repl.factor",
                       "net MB", "sim time (s)"});

  for (const std::size_t machines : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    for (const auto strategy : {snaple::gas::PartitionStrategy::kGreedy,
                                snaple::gas::PartitionStrategy::kHash}) {
      if (machines == 1 &&
          strategy == snaple::gas::PartitionStrategy::kHash) {
        continue;  // identical to greedy on one machine
      }
      const auto cluster = snaple::gas::ClusterConfig::type_i(machines);
      const snaple::LinkPredictor predictor(config, cluster, strategy);
      const auto run = predictor.predict(dataset.train);
      table.add_row(
          {std::to_string(machines), std::to_string(cluster.total_cores()),
           strategy == snaple::gas::PartitionStrategy::kGreedy ? "greedy"
                                                               : "hash",
           snaple::Table::fmt(run.replication_factor, 2),
           snaple::Table::fmt(static_cast<double>(run.network_bytes) / 1e6,
                              1),
           snaple::Table::fmt(run.simulated_seconds, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nGreedy vertex-cuts keep the replication factor (and so "
               "the sync traffic) below\nhash placement, which is why "
               "PowerGraph-style engines default to them.\n";
  return 0;
}
