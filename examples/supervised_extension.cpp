// Supervised link prediction — the paper's future-work extension (§7).
//
//   $ ./supervised_extension [scale]
//
// Blends three unsupervised SNAPLE scores (linearSum: path quality,
// counter: path count, PPR: popularity-normalized mass) with logistic
// regression trained on a self-supervised split, and compares the blend
// against each component on held-out edges. See core/ensemble.hpp.
#include <cstdlib>
#include <iostream>

#include "core/ensemble.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  const auto dataset = eval::prepare_dataset("livejournal", scale, 31);
  std::cout << "dataset " << dataset.name << ": "
            << dataset.train.num_vertices() << " vertices, "
            << dataset.train.num_edges() << " edges\n\n";

  const auto cluster = gas::ClusterConfig::type_ii(2);
  EnsembleConfig cfg;
  cfg.seed = 31;

  Table table({"predictor", "recall@5", "MRR", "time (s)"});

  for (const ScoreKind kind : cfg.components) {
    SnapleConfig scfg;
    scfg.score = kind;
    scfg.k = cfg.k;
    scfg.k_local = cfg.k_local;
    scfg.thr_gamma = cfg.thr_gamma;
    WallTimer timer;
    LinkPredictor predictor(scfg, cluster);
    const auto run = predictor.predict(dataset.train);
    table.add_row(
        {score_name(kind),
         Table::fmt(eval::recall(run.predictions, dataset.hidden), 3),
         Table::fmt(
             eval::mean_reciprocal_rank(run.predictions, dataset.hidden), 3),
         Table::fmt(timer.seconds(), 2)});
  }

  WallTimer timer;
  const auto ensemble = run_ensemble(dataset.train, cfg, cluster);
  table.add_row(
      {"supervised blend",
       Table::fmt(eval::recall(ensemble.predictions, dataset.hidden), 3),
       Table::fmt(
           eval::mean_reciprocal_rank(ensemble.predictions, dataset.hidden),
           3),
       Table::fmt(timer.seconds(), 2)});
  table.print(std::cout);

  std::cout << "\nlearned weights:";
  for (std::size_t c = 0; c < cfg.components.size(); ++c) {
    std::cout << "  " << score_name(cfg.components[c]) << "="
              << Table::fmt(ensemble.model.weights[c], 3);
  }
  std::cout << "  bias=" << Table::fmt(ensemble.model.bias, 3) << "\n";
  std::cout << "\nThe blend learns how much path count vs path quality vs "
               "popularity matters\nfor THIS graph — the per-dataset tuning "
               "§5.7 does by hand.\n";
  return 0;
}
