// Who-to-Follow: account recommendation served from a fitted model.
//
//   $ ./who_to_follow [scale]
//
// The paper's motivating deployment is Twitter's Who-to-Follow service
// (Gupta et al., WWW'13 — reference [12]), which moved from a single
// machine to a distributed setting as the graph grew. This example plays
// the production version of that scenario on the twitter-s replica: fit
// the model OFFLINE on a simulated 8-node type-II cluster (the batch
// half), then serve per-account "who to follow?" queries ONLINE from the
// fitted model — each answer costs work proportional to that account's
// retained paths, not a pass over the whole graph. We hide one "follow"
// per active user first and check how many hidden follows the served
// recommendations rediscover.
#include <cstdlib>
#include <iostream>

#include "core/predictor.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  std::cout << "Generating twitter-s replica (scale " << scale << ")...\n";
  const auto dataset = snaple::eval::prepare_dataset("twitter", scale, 2025);
  std::cout << "  " << dataset.train.num_vertices() << " accounts, "
            << dataset.train.num_edges() << " follows ("
            << dataset.hidden.size() << " hidden for evaluation)\n\n";

  // The paper's sweet spot: linearSum with a modest klocal.
  snaple::SnapleConfig config;
  config.k = 5;
  config.k_local = 40;

  // ---- Offline: fit the model on the simulated cluster. ----
  const auto cluster = snaple::gas::ClusterConfig::type_ii(8);
  const snaple::LinkPredictor predictor(config, cluster);
  snaple::WallTimer fit_timer;
  const auto model = std::make_shared<const snaple::PredictorModel>(
      predictor.fit(dataset.train));
  const double fit_seconds = fit_timer.seconds();

  std::cout << "cluster: " << cluster.describe() << "\n";
  std::cout << "model fit (host wall):   "
            << snaple::format_duration(fit_seconds) << "\n";
  std::cout << "fit network traffic:     "
            << static_cast<double>(model->fit_report().total_net_bytes()) /
                   1e6
            << " MB\n";
  std::cout << "model size:              "
            << static_cast<double>(model->memory_bytes()) / 1e6
            << " MB (PredictorModel::save ships this)\n\n";

  // ---- Online: serve queries from the model. ----
  const snaple::QueryEngine server(model);

  const auto predictions = snaple::prediction_lists(server.topk_all());
  std::cout << "recall on hidden follows: "
            << snaple::eval::recall(predictions, dataset.hidden) << "\n";

  // Measure what a single request costs compared to refitting.
  std::size_t sample = 0;
  snaple::WallTimer query_timer;
  for (snaple::VertexId u = 0;
       u < dataset.train.num_vertices() && sample < 1000; ++u) {
    if (dataset.train.out_degree(u) == 0) continue;
    (void)server.topk(u);
    ++sample;
  }
  const double per_query =
      sample > 0 ? query_timer.seconds() / static_cast<double>(sample) : 0;
  std::cout << "served " << sample << " queries at "
            << snaple::format_duration(per_query)
            << " each (vs " << snaple::format_duration(fit_seconds)
            << " to rebuild the model)\n\n";

  // Show the freshest recommendations for a few prolific accounts.
  std::cout << "sample who-to-follow lists (score in parentheses):\n";
  int shown = 0;
  for (snaple::VertexId u = 0;
       u < dataset.train.num_vertices() && shown < 5; ++u) {
    if (dataset.train.out_degree(u) < 20) continue;
    std::cout << "  account " << u << " (follows "
              << dataset.train.out_degree(u) << "): recommend ->";
    for (const auto& [z, score] : server.topk(u)) {
      std::cout << ' ' << z << " (" << snaple::Table::fmt(score, 3) << ")";
    }
    std::cout << '\n';
    ++shown;
  }
  return 0;
}
