// Who-to-Follow: account recommendation on a Twitter-like graph.
//
//   $ ./who_to_follow [scale]
//
// The paper's motivating deployment is Twitter's Who-to-Follow service
// (Gupta et al., WWW'13 — reference [12]), which moved from a single
// machine to a distributed setting as the graph grew. This example plays
// that scenario on the twitter-s replica: a directed, low-reciprocity
// follower graph. We hide one "follow" per active user, then ask SNAPLE
// for recommendations on a simulated 8-node type-II cluster and check how
// many hidden follows it rediscovers.
#include <cstdlib>
#include <iostream>

#include "core/predictor.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  std::cout << "Generating twitter-s replica (scale " << scale << ")...\n";
  const auto dataset = snaple::eval::prepare_dataset("twitter", scale, 2025);
  std::cout << "  " << dataset.train.num_vertices() << " accounts, "
            << dataset.train.num_edges() << " follows ("
            << dataset.hidden.size() << " hidden for evaluation)\n\n";

  // The paper's sweet spot: linearSum with a modest klocal.
  snaple::SnapleConfig config;
  config.k = 5;
  config.k_local = 40;

  const auto cluster = snaple::gas::ClusterConfig::type_ii(8);
  const snaple::LinkPredictor predictor(config, cluster);
  const auto run = predictor.predict(dataset.train);

  const double recall =
      snaple::eval::recall(run.predictions, dataset.hidden);

  std::cout << "cluster: " << cluster.describe() << "\n";
  std::cout << "wall time (host):        "
            << snaple::format_duration(run.wall_seconds) << "\n";
  std::cout << "simulated cluster time:  "
            << snaple::format_duration(run.simulated_seconds) << "\n";
  std::cout << "network traffic:         "
            << static_cast<double>(run.network_bytes) / 1e6 << " MB\n";
  std::cout << "replication factor:      " << run.replication_factor
            << "\n";
  std::cout << "recall on hidden follows: " << recall << "\n\n";

  // Show the freshest recommendations for a few prolific accounts.
  std::cout << "sample who-to-follow lists:\n";
  int shown = 0;
  for (snaple::VertexId u = 0;
       u < dataset.train.num_vertices() && shown < 5; ++u) {
    if (dataset.train.out_degree(u) < 20) continue;
    std::cout << "  account " << u << " (follows "
              << dataset.train.out_degree(u) << "): recommend ->";
    for (snaple::VertexId z : run.predictions[u]) std::cout << ' ' << z;
    std::cout << '\n';
    ++shown;
  }
  return 0;
}
