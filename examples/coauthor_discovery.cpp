// Missing-collaboration discovery on a co-authorship network.
//
//   $ ./coauthor_discovery [scale]
//
// Link prediction as social mining (§2.1: "uncover missing information"):
// on a livejournal-s style collaboration graph, an analyst wants likely
// but unrecorded collaborations. This example contrasts two scoring
// philosophies from the paper's design space:
//   * linearSum  — favors well-connected candidates (popularity counts);
//   * linearMean — averages path quality (popularity ignored).
// and reports how each fares at rediscovering hidden collaborations,
// echoing the Figure 3 / Figure 8 discussion.
#include <cstdlib>
#include <iostream>

#include "core/predictor.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.08;

  const auto dataset =
      snaple::eval::prepare_dataset("livejournal", scale, 7);
  std::cout << "co-authorship graph: " << dataset.train.num_vertices()
            << " authors, " << dataset.train.num_edges()
            << " collaboration links\n\n";

  snaple::Table table({"score", "aggregator", "recall@5", "recall@10",
                       "host time (s)"});

  for (const auto kind : {snaple::ScoreKind::kLinearSum,
                          snaple::ScoreKind::kCounter,
                          snaple::ScoreKind::kLinearMean,
                          snaple::ScoreKind::kLinearGeom}) {
    double recall5 = 0.0;
    double recall10 = 0.0;
    double seconds = 0.0;
    for (const std::size_t k : {5ul, 10ul}) {
      snaple::SnapleConfig config;
      config.score = kind;
      config.k = k;
      config.k_local = 40;
      const snaple::LinkPredictor predictor(config);
      const auto run = predictor.predict(dataset.train);
      const double r = snaple::eval::recall(run.predictions, dataset.hidden);
      if (k == 5) {
        recall5 = r;
        seconds = run.wall_seconds;
      } else {
        recall10 = r;
      }
    }
    const auto cfg = snaple::score_config(kind);
    table.add_row({cfg.name, cfg.aggregator.name(),
                   snaple::Table::fmt(recall5, 3),
                   snaple::Table::fmt(recall10, 3),
                   snaple::Table::fmt(seconds, 2)});
  }
  table.print(std::cout);

  std::cout << "\nSum-family scores credit candidates reached over many "
               "paths (popular hubs);\nMean/Geom normalize path counts "
               "away — see Figure 3 of the paper.\n";
  return 0;
}
