#!/usr/bin/env python3
"""Diff a bench --json artifact against a committed baseline.

Supports two artifact shapes:
  * snaple harness JSON (bench_common.hpp --json=<file>):
      {"scale": ..., "seed": ..., "tables": [{"name": ..., "rows": [...]}]}
    Rows are keyed by the concatenation of their non-numeric cells; every
    shared numeric column is compared.
  * Google Benchmark JSON (micro_kernels --benchmark_out=<file>
    --benchmark_out_format=json): benchmarks are keyed by "name" and
    compared on real_time (lower is better) and items_per_second /
    bytes_per_second (higher is better).

Direction is inferred from the column name: throughput-ish columns
("MB/s", "Medges/s", "per_second", "speedup", "recall") and ratio
columns ("compression_ratio") must not drop; time-ish columns ("s",
"seconds", "time", "wall") and size columns ("bytes", "footprint") must
not grow; other numeric columns are reported but never judged.

Default mode only reports (exit 0 unless artifacts are malformed or rows
disappeared); --enforce turns threshold violations into exit 1 so a later
PR can flip CI to enforcing. The default threshold is deliberately
generous (3x) — bench numbers recorded on one machine are compared on
another.
"""

import argparse
import json
import math
import sys

# "_ratio" (not bare "ratio") so Google Benchmark's "iterations" column
# stays informational.
HIGHER_BETTER = ("mb/s", "medges/s", "per_second", "speedup", "recall",
                 "items", "bytes_per", "_ratio")
LOWER_BETTER = ("load s", "time", "wall", "seconds", "real_time",
                "cpu_time", "sim", "bytes", "footprint")


def _higher_wins(c):
    """bytes_per_second is a throughput despite containing "bytes"."""
    return any(k in c for k in HIGHER_BETTER)


def direction(column):
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    c = column.lower()
    if _higher_wins(c):
        return 1
    if any(k in c for k in LOWER_BETTER):
        return -1
    return 0


def rows_from_artifact(doc):
    """Yields (row_key, {column: number})."""
    if "benchmarks" in doc:  # Google Benchmark format
        for b in doc.get("benchmarks", []):
            metrics = {
                k: v
                for k, v in b.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
            yield b.get("name", "?"), metrics
        return
    for table in doc.get("tables", []):
        for row in table.get("rows", []):
            label_bits = [table.get("name", "?")]
            metrics = {}
            for col, val in row.items():
                if isinstance(val, bool):
                    continue
                if isinstance(val, (int, float)):
                    metrics[col] = val
                else:
                    label_bits.append(str(val))
            yield " | ".join(label_bits), metrics


def load(path, role):
    """Parses one artifact; role ("current"/"baseline") names it in errors.

    Every failure path exits with a message that says WHICH file is bad —
    a missing or mangled committed baseline must read as "fix the
    baseline", not as a mysterious regression in the fresh run.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {role} artifact {path}: {exc}")
    if not isinstance(doc, dict):
        sys.exit(f"error: {role} artifact {path} is malformed: expected a "
                 f"JSON object, got {type(doc).__name__}")
    merged = {}
    try:
        for key, metrics in rows_from_artifact(doc):
            # Duplicate keys (e.g. several text-parallel rows) get suffixes
            # so both stay comparable.
            base, n = key, 2
            while key in merged:
                key = f"{base} #{n}"
                n += 1
            merged[key] = metrics
    except (AttributeError, TypeError) as exc:
        sys.exit(f"error: {role} artifact {path} is malformed: {exc}")
    return merged


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly produced --json artifact")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("--threshold", type=float, default=3.0,
                    help="max allowed worsening ratio (default 3.0)")
    ap.add_argument("--enforce", action="store_true",
                    help="exit 1 on threshold violations (default: report)")
    args = ap.parse_args()

    current = load(args.current, "current")
    baseline = load(args.baseline, "baseline")

    missing = sorted(set(baseline) - set(current))
    violations = []
    compared = 0

    for key in sorted(set(baseline) & set(current)):
        for col in sorted(set(baseline[key]) & set(current[key])):
            sign = direction(col)
            if sign == 0:
                continue
            base, cur = baseline[key][col], current[key][col]
            if not all(math.isfinite(x) for x in (base, cur)) or base == 0:
                continue
            compared += 1
            # ratio > 1 means "worse by that factor" in either direction.
            ratio = (base / cur) if sign > 0 else (cur / base)
            marker = ""
            if ratio > args.threshold:
                marker = "  <-- REGRESSION"
                violations.append((key, col, base, cur, ratio))
            print(f"{key} :: {col}: baseline={base:g} current={cur:g} "
                  f"worse-by={ratio:.2f}x{marker}")

    for key in missing:
        print(f"{key}: present in baseline, missing from current run")

    print(f"\ncompared {compared} metrics, {len(violations)} beyond "
          f"{args.threshold:.1f}x threshold, {len(missing)} missing rows")
    if missing:
        sys.exit("error: baseline rows disappeared from the artifact")
    if violations and args.enforce:
        sys.exit(1)


if __name__ == "__main__":
    main()
