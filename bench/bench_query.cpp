// Serving-split cost: what does one query cost vs a batch run?
//
// The fit/serve API (core/model.hpp, core/query_engine.hpp) exists so
// that answering "who should u follow?" for one user does not rerun the
// whole three-step batch pass. This harness quantifies the gap on the
// ~1M-edge livejournal replica:
//
//   batch-predict   run_snaple: the fully-accounted 3-step GAS pass
//   fit             steps 1–2 + model build (the offline half)
//   model-save/load the SNAPLEM1 round trip a deployment ships
//   single queries  QueryEngine::topk(u) mean latency over a sample
//   threaded batch  topk_batch queries/sec across the pool
//
// Acceptance (ISSUE 4): a single query must run ≥100× faster than a full
// batch predict, and the model must round-trip exactly. Correctness is
// ENFORCED here (exit 1): sampled queries must equal the batch scored
// results bit-for-bit, and the loaded model must equal the saved one —
// the timing rows stay report-only in CI, like bench_shard_exchange.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "core/snaple_program.hpp"
#include "graph/gen/datasets.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace snaple;

/// Times fn() best-of-N, repeating only while runs are fast (same idiom
/// as bench_ingest: smoke-scale rows should not be pure noise).
template <typename Fn>
double time_best(Fn&& fn, int max_reps = 3, double slow_enough_s = 0.5) {
  double best = 1e100;
  for (int rep = 0; rep < max_reps; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
    if (best >= slow_enough_s) break;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Serving API — single-query latency vs batch prediction",
      "fit/serve split of ISSUE 4: model build, save/load round trip, "
      "QueryEngine::topk latency and threaded queries/sec against the "
      "run_snaple batch pass (acceptance: single query >= 100x faster).");

  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = nullptr;
  if (opt.threads > 0) {
    own_pool = std::make_unique<ThreadPool>(opt.threads - 1);
    pool = own_pool.get();
  }

  // ~1M directed edges at --scale=1 (livejournal-s base 806k × 1.25).
  const CsrGraph graph =
      gen::make_dataset("livejournal", 1.25 * opt.scale, opt.seed);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges\n\n";

  SnapleConfig cfg;
  cfg.k_local = 20;
  cfg.seed = opt.seed;
  const auto cluster = gas::ClusterConfig::single_machine(
      std::thread::hardware_concurrency());
  const auto part = gas::Partitioning::create(
      graph, cluster.num_machines, gas::PartitionStrategy::kGreedy,
      cfg.seed);

  // ---- Batch: the engine-level three-step pass. ----
  SnapleResult batch;
  const double batch_s = time_best(
      [&] { batch = run_snaple(graph, cfg, part, cluster, pool); });

  // ---- Fit: steps 1–2 + model assembly. ----
  const LinkPredictor predictor(cfg, cluster);
  std::shared_ptr<const PredictorModel> model;
  const double fit_s = time_best([&] {
    model = std::make_shared<const PredictorModel>(
        predictor.fit_with_partitioning(graph, part, pool));
  });

  // ---- Model round trip (exactness is an acceptance criterion). ----
  const std::string model_path = "bench_query_model.bin";
  const double save_s =
      time_best([&] { model->save_file(model_path); });
  PredictorModel loaded;
  const double load_s =
      time_best([&] { loaded = PredictorModel::load_file(model_path); });
  std::remove(model_path.c_str());
  const bool roundtrip_ok = loaded == *model;

  Table serving({"phase", "wall s", "MB"});
  serving.add_row({"batch-predict", Table::fmt(batch_s, 4), "-"});
  serving.add_row({"fit", Table::fmt(fit_s, 4),
                   Table::fmt(static_cast<double>(model->memory_bytes()) /
                                  1e6, 2)});
  serving.add_row({"model-save", Table::fmt(save_s, 4), "-"});
  serving.add_row({"model-load", Table::fmt(load_s, 4), "-"});
  bench::finish(serving, opt, "serving");

  // ---- Queries: a deterministic sample striding the vertex range. ----
  const QueryEngine server(model);
  const std::size_t want = 512;
  std::vector<VertexId> sample;
  const VertexId n = graph.num_vertices();
  const VertexId stride = std::max<VertexId>(1, n / static_cast<VertexId>(want));
  for (VertexId u = 0; u < n && sample.size() < want; u += stride) {
    sample.push_back(u);
  }

  // Correctness first (ENFORCED): served answers ≡ batch, bit-for-bit.
  std::size_t mismatches = 0;
  for (const VertexId u : sample) {
    if (server.topk(u) != batch.scored[u]) ++mismatches;
  }

  // Mean single-query latency (single thread, scratch warm after the
  // correctness sweep).
  const double single_s = time_best([&] {
    for (const VertexId u : sample) (void)server.topk(u);
  });
  const double mean_query_s =
      single_s / static_cast<double>(sample.size());

  // Threaded throughput via topk_batch.
  const double threaded_s = time_best([&] {
    (void)server.topk_batch(sample, 0, pool);
  });
  const double qps =
      static_cast<double>(sample.size()) / std::max(threaded_s, 1e-12);

  Table queries({"mode", "queries", "wall s", "latency_us",
                 "queries_per_second"});
  queries.add_row({"single-thread", std::to_string(sample.size()),
                   Table::fmt(single_s, 5),
                   Table::fmt(mean_query_s * 1e6, 1),
                   Table::fmt(static_cast<double>(sample.size()) /
                                  std::max(single_s, 1e-12), 0)});
  queries.add_row({"threaded", std::to_string(sample.size()),
                   Table::fmt(threaded_s, 5), "-", Table::fmt(qps, 0)});
  bench::finish(queries, opt, "queries");

  const double speedup = batch_s / std::max(mean_query_s, 1e-12);
  Table summary({"what", "speedup"});
  summary.add_row({"batch wall / single query", Table::fmt(speedup, 0)});
  bench::finish(summary, opt, "summary");

  std::cout << "single query vs batch: " << Table::fmt(speedup, 0)
            << "x (acceptance bar: 100x at scale 1)\n";

  if (mismatches > 0) {
    std::cerr << "ERROR: " << mismatches << "/" << sample.size()
              << " served queries diverged from the batch results\n";
    return 1;
  }
  if (!roundtrip_ok) {
    std::cerr << "ERROR: model save/load round trip is not exact\n";
    return 1;
  }
  std::cout << "correctness: " << sample.size()
            << " queries identical to batch; model round trip exact\n";
  return 0;
}
