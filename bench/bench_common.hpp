// Shared plumbing for the per-table / per-figure bench harnesses.
//
// Every harness:
//   * accepts --scale=<f> (multiplies each dataset's default replica
//     scale; crank it up if you have the hardware, down for smoke runs),
//     --csv (append machine-readable output), --seed=<n>;
//   * prints which paper artifact it reproduces and the replica sizes;
//   * reports both measured host time and simulated cluster time.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "eval/experiment.hpp"
#include "graph/gen/datasets.hpp"
#include "util/table.hpp"

namespace snaple::bench {

struct BenchOptions {
  double scale = 1.0;   // multiplier on per-bench dataset scales
  bool csv = false;
  std::uint64_t seed = 42;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::atof(arg.c_str() + 8);
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --scale=<f> --csv --seed=<n>\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

inline void print_header(const std::string& artifact,
                         const std::string& what) {
  std::cout << "==============================================================\n";
  std::cout << "Reproduces: " << artifact << "\n";
  std::cout << what << "\n";
  std::cout << "(synthetic dataset replicas — see docs/DATASETS.md for the\n"
               " substitution rationale; shapes and orderings are the\n"
               " reproduction target, not absolute values)\n";
  std::cout << "==============================================================\n\n";
}

inline eval::PreparedDataset prepare(const std::string& name,
                                     double base_scale,
                                     const BenchOptions& opt,
                                     std::size_t removed_per_vertex = 1) {
  auto ds = eval::prepare_dataset(name, base_scale * opt.scale, opt.seed,
                                  removed_per_vertex);
  std::cout << "dataset " << ds.name << ": "
            << ds.train.num_vertices() << " vertices, "
            << ds.train.num_edges() << " edges, " << ds.hidden.size()
            << " hidden\n";
  return ds;
}

/// Per-machine memory budget for the simulated cluster, scaled from the
/// paper's machines by the replica/original edge ratio, so "fits in
/// memory" means the same thing proportionally that it meant on the
/// paper's testbed. `paper_bytes`: 32 GB for type-I, 128 GB for type-II.
inline std::size_t scaled_budget(const std::string& dataset_name,
                                 const CsrGraph& replica,
                                 double paper_gb) {
  const auto& spec = gen::dataset_spec(dataset_name);
  const double ratio = static_cast<double>(replica.num_edges()) /
                       static_cast<double>(spec.paper_edges);
  const double bytes = paper_gb * 1e9 * ratio;
  return static_cast<std::size_t>(std::max(bytes, 4e6));
}

inline void finish(const Table& table, const BenchOptions& opt) {
  table.print(std::cout);
  if (opt.csv) {
    std::cout << "\n--- csv ---\n";
    table.print_csv(std::cout);
  }
  std::cout << std::endl;
}

inline std::string fmt_or_oom(const eval::Outcome& out, double value,
                              int precision = 2) {
  return out.out_of_memory ? "OOM" : Table::fmt(value, precision);
}

/// Wraps a cell value in parentheses. (Building the string in place also
/// sidesteps GCC 12's -Wrestrict false positive on `"(" + s + ")"`,
/// gcc bug 105651.)
inline std::string parens(std::string s) {
  s.insert(s.begin(), '(');
  s.push_back(')');
  return s;
}

}  // namespace snaple::bench
