// Shared plumbing for the per-table / per-figure bench harnesses.
//
// Every harness:
//   * accepts --scale=<f> (multiplies each dataset's default replica
//     scale; crank it up if you have the hardware, down for smoke runs),
//     --csv (append machine-readable output), --seed=<n>;
//   * prints which paper artifact it reproduces and the replica sizes;
//   * reports both measured host time and simulated cluster time.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "eval/experiment.hpp"
#include "graph/gen/datasets.hpp"
#include "util/table.hpp"

namespace snaple::bench {

struct BenchOptions {
  double scale = 1.0;   // multiplier on per-bench dataset scales
  bool csv = false;
  std::uint64_t seed = 42;
  std::string json_path;     // --json=<file>: machine-readable artifact
  std::size_t threads = 0;   // --threads=<n>: pool size, 0 = hardware
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::atof(arg.c_str() + 8);
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --scale=<f> --csv --json=<file> --seed=<n>"
                   " --threads=<n>\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

inline void print_header(const std::string& artifact,
                         const std::string& what) {
  std::cout << "==============================================================\n";
  std::cout << "Reproduces: " << artifact << "\n";
  std::cout << what << "\n";
  std::cout << "(synthetic dataset replicas — see docs/DATASETS.md for the\n"
               " substitution rationale; shapes and orderings are the\n"
               " reproduction target, not absolute values)\n";
  std::cout << "==============================================================\n\n";
}

inline eval::PreparedDataset prepare(const std::string& name,
                                     double base_scale,
                                     const BenchOptions& opt,
                                     std::size_t removed_per_vertex = 1) {
  auto ds = eval::prepare_dataset(name, base_scale * opt.scale, opt.seed,
                                  removed_per_vertex);
  std::cout << "dataset " << ds.name << ": "
            << ds.train.num_vertices() << " vertices, "
            << ds.train.num_edges() << " edges, " << ds.hidden.size()
            << " hidden\n";
  return ds;
}

/// Per-machine memory budget for the simulated cluster, scaled from the
/// paper's machines by the replica/original edge ratio, so "fits in
/// memory" means the same thing proportionally that it meant on the
/// paper's testbed. `paper_bytes`: 32 GB for type-I, 128 GB for type-II.
inline std::size_t scaled_budget(const std::string& dataset_name,
                                 const CsrGraph& replica,
                                 double paper_gb) {
  const auto& spec = gen::dataset_spec(dataset_name);
  const double ratio = static_cast<double>(replica.num_edges()) /
                       static_cast<double>(spec.paper_edges);
  const double bytes = paper_gb * 1e9 * ratio;
  return static_cast<std::size_t>(std::max(bytes, 4e6));
}

inline void finish(const Table& table, const BenchOptions& opt,
                   const std::string& table_name = "results") {
  table.print(std::cout);
  if (opt.csv) {
    std::cout << "\n--- csv ---\n";
    table.print_csv(std::cout);
  }
  std::cout << std::endl;
  if (opt.json_path.empty()) return;
  // Harnesses that print several tables call finish() several times; the
  // artifact accumulates all of them and is rewritten whole each call, so
  // the file is valid JSON after every finish.
  static std::vector<std::pair<std::string, Table>> emitted;
  emitted.emplace_back(table_name, table);
  std::ofstream jf(opt.json_path);
  if (!jf) {
    std::cerr << "cannot write " << opt.json_path << "\n";
    std::exit(1);
  }
  jf << "{\n  \"scale\": " << opt.scale << ",\n  \"seed\": " << opt.seed
     << ",\n  \"tables\": [";
  for (std::size_t t = 0; t < emitted.size(); ++t) {
    jf << (t == 0 ? "\n" : ",\n") << "    {\"name\": \"" << emitted[t].first
       << "\", \"rows\": ";
    emitted[t].second.print_json(jf);
    jf << '}';
  }
  jf << "\n  ]\n}\n";
}

inline std::string fmt_or_oom(const eval::Outcome& out, double value,
                              int precision = 2) {
  return out.out_of_memory ? "OOM" : Table::fmt(value, precision);
}

/// Wraps a cell value in parentheses. (Building the string in place also
/// sidesteps GCC 12's -Wrestrict false positive on `"(" + s + ")"`,
/// gcc bug 105651.)
inline std::string parens(std::string s) {
  s.insert(s.begin(), '(');
  s.push_back(')');
  return s;
}

}  // namespace snaple::bench
