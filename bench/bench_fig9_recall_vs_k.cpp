// Figure 9: evolution of recall when increasing k (answers returned).
//
// Paper setup (§5.8): livejournal and pokec, k ∈ {5,10,15,20},
// klocal=80, for the five Sum-family scores.
//
// Expected shape: recall increases substantially with k on both
// datasets, for every score.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 9 — recall vs number of returned predictions k",
      "klocal=80; Sum-family scores on livejournal and pokec replicas.");

  struct DatasetPoint {
    const char* name;
    double base_scale;
  };
  const DatasetPoint datasets[] = {{"livejournal", 0.4}, {"pokec", 0.4}};
  const auto cluster = gas::ClusterConfig::type_ii(4);

  Table table({"dataset", "score", "k=5", "k=10", "k=15", "k=20"});
  for (const auto& [name, base_scale] : datasets) {
    const auto ds = bench::prepare(name, base_scale, opt);
    for (const ScoreKind score :
         {ScoreKind::kCounter, ScoreKind::kEuclSum, ScoreKind::kGeomSum,
          ScoreKind::kLinearSum, ScoreKind::kPpr}) {
      std::vector<std::string> row{ds.name, score_name(score)};
      for (const std::size_t k : {5ul, 10ul, 15ul, 20ul}) {
        SnapleConfig cfg;
        cfg.score = score;
        cfg.k = k;
        cfg.k_local = 80;
        const auto out = eval::run_snaple_experiment(ds, cfg, cluster);
        row.push_back(Table::fmt(out.recall, 3));
      }
      table.add_row(std::move(row));
    }
  }
  bench::finish(table, opt);
  return 0;
}
