// Figure 6: impact of the truncation threshold thrΓ.
//
// Part 1 (Fig 6a–c): CDFs of out-degrees for orkut, livejournal and
// twitter with the candidate thrΓ values {10,20,40,80,100} marked — the
// fraction of vertices a given threshold leaves untouched.
// Part 2 (Fig 6d): relative recall improvement over thrΓ=10 using
// linearSum with klocal=80.
//
// Expected shape: recall improvement rises with thrΓ and flattens once
// thrΓ covers ~80% of vertices; the effect is strongest on orkut, whose
// degree mass sits inside the swept interval.
#include <iostream>

#include "bench_common.hpp"
#include "graph/degree.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 6 — impact of the truncation threshold thrΓ",
      "(a–c) out-degree CDF at each thrΓ marker; (d) recall improvement "
      "relative to thrΓ=10 (linearSum, klocal=80).");

  const std::size_t thresholds[] = {10, 20, 40, 80, 100};
  struct DatasetPoint {
    const char* name;
    double base_scale;
  };
  const DatasetPoint datasets[] = {
      {"orkut", 0.25}, {"livejournal", 0.4}, {"twitter", 0.2}};

  // ---- Part 1: degree CDF at the thrΓ markers. ----
  Table cdf_table({"dataset", "thr=10", "thr=20", "thr=40", "thr=80",
                   "thr=100", "(fraction of vertices with deg <= thr)"});
  std::vector<eval::PreparedDataset> prepared;
  for (const auto& [name, base_scale] : datasets) {
    prepared.push_back(bench::prepare(name, base_scale, opt));
    const auto cdf = out_degree_cdf(prepared.back().train);
    std::vector<std::string> row{prepared.back().name};
    for (const std::size_t thr : thresholds) {
      row.push_back(Table::fmt(cdf.at(static_cast<double>(thr)), 3));
    }
    cdf_table.add_row(std::move(row));
  }
  bench::finish(cdf_table, opt);

  // ---- Part 2: relative recall improvement vs thrΓ=10. ----
  const auto cluster = gas::ClusterConfig::type_ii(4);
  Table recall_table({"dataset", "thr", "recall", "% improvement vs thr=10"});
  for (const auto& ds : prepared) {
    double base_recall = 0.0;
    for (const std::size_t thr : thresholds) {
      SnapleConfig cfg;
      cfg.k_local = 80;
      cfg.thr_gamma = thr;
      const auto out = eval::run_snaple_experiment(ds, cfg, cluster);
      if (thr == 10) base_recall = out.recall;
      const double improvement =
          base_recall > 0.0 ? (out.recall / base_recall - 1.0) * 100.0 : 0.0;
      recall_table.add_row({ds.name, std::to_string(thr),
                            Table::fmt(out.recall, 3),
                            Table::fmt(improvement, 1)});
    }
  }
  bench::finish(recall_table, opt);
  return 0;
}
