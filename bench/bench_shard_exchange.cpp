// Shard-exchange micro-bench: what does true sharding cost?
//
// Runs the identical SNAPLE job (linearSum, klocal=20) on an 8-machine
// type-I cluster through both engines:
//   * flat    — one address space, distribution accounted;
//   * sharded — per-machine shards, replica-local vertex data, explicit
//               MessageBuffer exchange (the real per-superstep protocol).
// and reports, per superstep, where the sharded wall time goes:
// gather+build (phase A: local gather, partial-sum buffers), merge+apply
// (phase B: drain partials, merge ascending machine order, apply, build
// sync buffers) and sync drain (phase C: write syncs into mirror
// replicas). Results and traffic are bit-identical between the engines
// (the equivalence property test pins it), so the only question this
// bench answers is overhead: the summary's wall-time ratio should stay
// near 1 (the PR-3 acceptance bar is ≤ 1.25× at 8 machines).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/snaple_program.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Shard-exchange overhead — flat vs truly sharded execution",
      "per-superstep exchange-buffer build/serialize/drain time and the "
      "sharded/flat wall-time ratio on 8 simulated machines.");

  const auto ds = bench::prepare("gowalla", 0.75, opt);
  const std::size_t machines = 8;
  const auto cluster = gas::ClusterConfig::type_i(machines);
  const auto part = gas::Partitioning::create(
      ds.train, machines, gas::PartitionStrategy::kGreedy, opt.seed);

  SnapleConfig cfg;
  cfg.k_local = 20;
  cfg.seed = opt.seed;

  // The shard layout is placement preprocessing — built once per
  // partitioning and reused across jobs, exactly as the partitioning
  // itself is; the repo's measurement protocol (predictor.hpp) excludes
  // partitioning from timed regions.
  const auto topo = std::make_shared<const gas::ShardTopology>(
      gas::ShardTopology::build(ds.train, part));

  // Best-of-3 per mode (the dev box is a shared 1-core machine — single
  // runs swing by ±10%): the interesting quantity is engine overhead,
  // not allocator warm-up or scheduler noise. The headline ratio
  // compares the summed *superstep* wall times — the engine-measured
  // execution of the three GAS steps, which is what sharding changes;
  // end-to-end run_snaple wall (adds result extraction and report
  // assembly, identical in both modes) is reported alongside.
  auto best_run = [&](gas::ExecutionMode exec) {
    SnapleResult best;
    double best_outer = 1e300;
    double best_steps = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer t;
      SnapleResult r = run_snaple(ds.train, cfg, part, cluster, nullptr,
                                  gas::ApplyMode::kFused, exec, topo);
      best_outer = std::min(best_outer, t.seconds());
      if (r.report.total_wall_s() < best_steps) {
        best_steps = r.report.total_wall_s();
        best = std::move(r);
      }
    }
    return std::pair{std::move(best), best_outer};
  };

  auto [flat, flat_outer] = best_run(gas::ExecutionMode::kFlat);
  auto [sharded, sharded_outer] = best_run(gas::ExecutionMode::kSharded);
  const double flat_wall = flat.report.total_wall_s();
  const double sharded_wall = sharded.report.total_wall_s();

  Table steps({"step", "flat wall s", "sharded wall s", "net MB",
               "gather+build s", "merge+apply s", "sync drain s"});
  for (std::size_t i = 0; i < sharded.report.steps.size(); ++i) {
    const auto& fs = flat.report.steps[i];
    const auto& ss = sharded.report.steps[i];
    steps.add_row({ss.name, Table::fmt(fs.wall_s, 4),
                   Table::fmt(ss.wall_s, 4),
                   Table::fmt(static_cast<double>(ss.net_bytes) / 1e6, 2),
                   Table::fmt(ss.exchange.gather_build_s, 4),
                   Table::fmt(ss.exchange.merge_apply_s, 4),
                   Table::fmt(ss.exchange.sync_drain_s, 4)});
  }
  bench::finish(steps, opt, "per_step");

  const bool identical =
      flat.predictions == sharded.predictions &&
      flat.report.total_net_bytes() == sharded.report.total_net_bytes();
  Table summary({"engine", "steps wall s", "run wall s", "net MB", "ratio",
                 "identical"});
  summary.add_row(
      {"flat", Table::fmt(flat_wall, 3), Table::fmt(flat_outer, 3),
       Table::fmt(static_cast<double>(flat.report.total_net_bytes()) / 1e6,
                  2),
       "1.00", "-"});
  summary.add_row(
      {"sharded", Table::fmt(sharded_wall, 3), Table::fmt(sharded_outer, 3),
       Table::fmt(
           static_cast<double>(sharded.report.total_net_bytes()) / 1e6, 2),
       Table::fmt(sharded_wall / std::max(flat_wall, 1e-12), 2),
       identical ? "yes" : "NO"});
  bench::finish(summary, opt, "summary");

  if (!identical) {
    std::cerr << "ERROR: sharded run diverged from flat run\n";
    return 1;
  }
  std::cout << "sharded/flat wall ratio: "
            << sharded_wall / std::max(flat_wall, 1e-12)
            << " (acceptance bar: 1.25 at 8 machines)\n";
  return 0;
}
