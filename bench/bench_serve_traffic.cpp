// Sharded serving tier under load: route, fetch, measure, verify.
//
// ISSUE 6's proof-under-load harness for src/serve/: the model is
// partitioned over N ShardServers, a QueryRouter drives Zipfian query
// traffic from closed-loop client threads over a real byte transport,
// and the whole exercise is gated on bit-identity with the
// single-process QueryEngine. Four phases:
//
//   correctness   ENFORCED (exit 1): sampled Zipf users answered by the
//                 cluster ≡ QueryEngine, bit for bit, across shard
//                 counts × transports × colocate/fetch modes — with the
//                 hot-row cache on and off, and through the batched
//                 (op 3) submission path.
//   traffic       closed-loop clients, Zipfian user mix: p50/p99
//                 latency, queries/sec, cache hit rate, remote fetches
//                 and wire bytes per query — the co-locate vs
//                 remote-fetch vs cached/batched cost model with
//                 numbers attached (docs/SERVING.md).
//   fastpath      ENFORCED (exit 1): the ISSUE 7 serving fast path at
//                 8 shards in remote-fetch mode — the versioned hot-row
//                 cache must cut fetches/query by ≥2× vs the cacheless
//                 cluster on the same Zipf workload (counter-based, so
//                 stable in CI; p50/p99 are reported alongside).
//   updates       the LIVE update plane (ISSUE 9) under fire: a 4-shard
//                 remote-fetch cluster absorbs the held-back insert
//                 stream IN PLACE — batches fanned to every shard by
//                 the UpdateRouter, no freeze, no re-shard — while the
//                 same closed-loop Zipf clients keep querying. Reports
//                 query p50/p99 idle vs during the burst plus the
//                 staleness window (the apply() round trip: submission
//                 until every shard has republished its owned stale
//                 rows). ENFORCED (exit 1): after the burst and a
//                 version barrier, served answers are bit-identical to
//                 a from-scratch fit on the union graph.
//   window        sliding-window replay (ISSUE 10): a fresh live
//                 cluster absorbs the same stream in timestamp order
//                 with a window of half its length — every insert batch
//                 past capacity fans an op-6 REMOVE batch expiring the
//                 oldest edges, Zipf clients querying throughout.
//                 Reports churn ops/sec and the op round-trip staleness
//                 p50/p99. ENFORCED (exit 1): at end of replay, served
//                 answers are bit-identical to a from-scratch fit on
//                 the window graph (base + surviving inserts).
//
// Baselines: bench/baselines/bench_serve_traffic.json, recorded at
// --scale=0.1 --seed=42 (CI smoke scale). wall-s and queries_per_second
// columns are judged by check_regression.py; latency percentiles, hit
// rates and per-query fetch counts are informational there (the ≥2×
// fetch-reduction gate lives in THIS binary, where it is deterministic).
#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <iostream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "core/query_engine.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace snaple;

/// Zipfian user sampler: rank r (0-based) drawn with P(r) ∝ 1/(r+1)^s,
/// ranks mapped to vertex ids through a seed-keyed permutation so the
/// hot users land on different shards run to run (a contiguous range
/// partitioning with unpermuted Zipf ranks would aim all heat at shard
/// 0 — realistic ids are not sorted by popularity).
class ZipfUsers {
 public:
  ZipfUsers(VertexId n, double exponent, std::uint64_t seed) : perm_(n) {
    cdf_.reserve(n);
    double total = 0.0;
    for (VertexId r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r) + 1.0, exponent);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
    for (VertexId u = 0; u < n; ++u) perm_[u] = u;
    Rng rng(seed ^ 0x5a1bf00d);
    shuffle(perm_, rng);
  }

  [[nodiscard]] VertexId draw(Rng& rng) const {
    const double x = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
    const auto rank = static_cast<std::size_t>(
        it == cdf_.end() ? cdf_.size() - 1 : it - cdf_.begin());
    return perm_[rank];
  }

 private:
  std::vector<double> cdf_;
  std::vector<VertexId> perm_;
};

struct LoadResult {
  double wall_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double qps = 0.0;
  std::size_t queries = 0;
};

/// Closed-loop load: `clients` threads, each drawing its own Zipf user
/// stream and issuing `per_client` back-to-back queries against `topk`
/// (any callable VertexId -> scored list), timing every request.
template <typename TopkFn>
LoadResult drive_load(const ZipfUsers& users, std::size_t clients,
                      std::size_t per_client, std::uint64_t seed,
                      TopkFn&& topk) {
  std::vector<std::vector<double>> lat_us(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  WallTimer wall;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + 0x9e3779b97f4a7c15ULL * (c + 1));
      auto& lat = lat_us[c];
      lat.reserve(per_client);
      for (std::size_t q = 0; q < per_client; ++q) {
        const VertexId u = users.draw(rng);
        WallTimer t;
        (void)topk(u);
        lat.push_back(t.seconds() * 1e6);
      }
    });
  }
  for (auto& th : threads) th.join();
  LoadResult r;
  r.wall_s = wall.seconds();
  std::vector<double> all;
  for (auto& lat : lat_us) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  r.queries = all.size();
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);
  r.qps = static_cast<double>(r.queries) / std::max(r.wall_s, 1e-12);
  return r;
}

/// Same closed loop, but each client groups `batch` draws into one
/// topk_batch call; the recorded per-query latency is the batch round
/// trip amortized over its members — what a batching client actually
/// experiences per answer. Trailing draws that don't fill a batch are
/// skipped, so queries is a multiple of `batch`.
template <typename BatchFn>
LoadResult drive_load_batched(const ZipfUsers& users, std::size_t clients,
                              std::size_t per_client, std::size_t batch,
                              std::uint64_t seed, BatchFn&& topk_batch) {
  std::vector<std::vector<double>> lat_us(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  WallTimer wall;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + 0x9e3779b97f4a7c15ULL * (c + 1));
      auto& lat = lat_us[c];
      lat.reserve(per_client);
      std::vector<VertexId> group(batch);
      for (std::size_t q = 0; q + batch <= per_client; q += batch) {
        for (auto& u : group) u = users.draw(rng);
        WallTimer t;
        (void)topk_batch(group);
        const double each =
            t.seconds() * 1e6 / static_cast<double>(batch);
        for (std::size_t j = 0; j < batch; ++j) lat.push_back(each);
      }
    });
  }
  for (auto& th : threads) th.join();
  LoadResult r;
  r.wall_s = wall.seconds();
  std::vector<double> all;
  for (auto& lat : lat_us) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  r.queries = all.size();
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);
  r.qps = static_cast<double>(r.queries) / std::max(r.wall_s, 1e-12);
  return r;
}

std::string mode_name(serve::TransportKind t, bool colocate) {
  return std::string(serve::to_string(t)) +
         (colocate ? "+colocate" : "+fetch");
}

/// "hit %" cell: lookups==0 (cache off / colocate) renders as "-".
std::string hit_pct(const serve::RowCacheStats& cs) {
  const std::uint64_t lookups = cs.hits + cs.misses;
  if (lookups == 0) return "-";
  return Table::fmt(100.0 * static_cast<double>(cs.hits) /
                        static_cast<double>(lookups), 1);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Sharded serving tier — Zipfian traffic over shard servers",
      "ISSUE 6: the model partitioned over ShardServers behind a "
      "QueryRouter, queried by closed-loop Zipf clients over real byte "
      "transports; p50/p99/QPS plus the co-locate vs remote-fetch cost "
      "model, gated on bit-identity with the single-process engine.");

  const std::size_t clients =
      std::min<std::size_t>(8, std::max(2u, std::thread::hardware_concurrency()));

  // ~1M directed edges at --scale=1; ~512 edges held back as the live
  // insert stream of the update phase (same discipline as bench_update).
  const CsrGraph union_graph =
      gen::make_dataset("livejournal", 1.25 * opt.scale, opt.seed);
  const auto all_edges = union_graph.edges();
  const std::size_t want_inserts =
      std::min<std::size_t>(512, all_edges.size() / 8);
  const std::size_t stride =
      std::max<std::size_t>(2, all_edges.size() / want_inserts);
  std::vector<Edge> inserts;
  GraphBuilder builder(union_graph.num_vertices());
  for (std::size_t i = 0; i < all_edges.size(); ++i) {
    if (i % stride == 1 && inserts.size() < want_inserts) {
      inserts.push_back(all_edges[i]);
    } else {
      builder.add_edge(all_edges[i].src, all_edges[i].dst);
    }
  }
  const auto base_graph = std::make_shared<const CsrGraph>(builder.build());
  const VertexId n = base_graph->num_vertices();
  std::cout << "graph: " << n << " vertices, " << base_graph->num_edges()
            << " edges (" << inserts.size() << " held back as inserts), "
            << clients << " clients\n\n";

  SnapleConfig cfg;
  cfg.k_local = 20;
  cfg.seed = opt.seed;
  // 4 simulated machines with the insertion-stable placement: queries
  // replay nontrivial machine-grouped folds AND the update phase can
  // wrap the same model in a DynamicModel.
  const auto cluster_cfg = gas::ClusterConfig::type_i(4);
  const LinkPredictor predictor(cfg, cluster_cfg,
                                gas::PartitionStrategy::kEdgeLocal);
  const auto model =
      std::make_shared<const PredictorModel>(predictor.fit(base_graph));
  const QueryEngine engine(model);

  const ZipfUsers users(n, /*exponent=*/0.99, opt.seed);

  // ---- Phase 1: correctness gates (ENFORCED). ------------------------
  std::vector<VertexId> sample;
  {
    Rng rng(opt.seed ^ 0xc0ffee);
    for (std::size_t i = 0; i < 512; ++i) sample.push_back(users.draw(rng));
  }
  std::vector<std::vector<std::pair<VertexId, float>>> reference;
  reference.reserve(sample.size());
  for (const VertexId u : sample) reference.push_back(engine.topk(u));

  std::size_t total_mismatches = 0;
  std::size_t correctness_configs = 0;
  Table correctness({"shards", "mode", "queries", "mismatches"});
  struct CorrectnessMode {
    const char* suffix;  // appended to the transport name in the table
    bool colocate;
    bool cache;
    bool batch;  // submit through topk_batch (op 3) in chunks of 64
  };
  constexpr CorrectnessMode kModes[] = {
      {"+colocate", true, false, false},
      {"+fetch", false, false, false},
      {"+fetch+cache", false, true, false},
      {"+fetch+cache+batch", false, true, true},
  };
  for (const std::size_t shards : {2ul, 8ul}) {
    for (const auto transport : {serve::TransportKind::kInProcess,
                                 serve::TransportKind::kUnixSocket}) {
      for (const auto& m : kModes) {
        serve::ServeOptions so;
        so.num_shards = shards;
        so.transport = transport;
        so.colocate = m.colocate;
        if (m.cache) so.cache_bytes = 64ull << 20;
        serve::ServingCluster cluster(*model, so);
        std::size_t mismatches = 0;
        if (m.batch) {
          for (std::size_t i = 0; i < sample.size(); i += 64) {
            const std::size_t len =
                std::min<std::size_t>(64, sample.size() - i);
            const auto got = cluster.router().topk_batch(
                std::span<const VertexId>(sample.data() + i, len));
            for (std::size_t j = 0; j < len; ++j) {
              if (got[j] != reference[i + j]) ++mismatches;
            }
          }
        } else {
          for (std::size_t i = 0; i < sample.size(); ++i) {
            if (cluster.router().topk(sample[i]) != reference[i]) {
              ++mismatches;
            }
          }
        }
        total_mismatches += mismatches;
        ++correctness_configs;
        correctness.add_row(
            {std::to_string(shards),
             std::string(serve::to_string(transport)) + m.suffix,
             std::to_string(sample.size()), std::to_string(mismatches)});
      }
    }
  }
  bench::finish(correctness, opt, "correctness");

  // ---- Phase 2: closed-loop Zipfian traffic. -------------------------
  const std::size_t per_client =
      std::max<std::size_t>(200, static_cast<std::size_t>(1500 * opt.scale));
  Table traffic({"mode", "shards", "queries", "wall s",
                 "queries_per_second", "p50_us", "p99_us", "hit %",
                 "fetches/query", "wire B/query", "max inflight"});
  struct TrafficMode {
    serve::TransportKind transport;
    bool colocate;
    bool cache;
    std::size_t batch;  // 1 = per-query topk, >1 = topk_batch groups
  };
  std::vector<TrafficMode> traffic_modes;
  for (const auto transport : {serve::TransportKind::kInProcess,
                               serve::TransportKind::kUnixSocket}) {
    traffic_modes.push_back({transport, true, false, 1});
    traffic_modes.push_back({transport, false, false, 1});
    traffic_modes.push_back({transport, false, true, 1});
  }
  // The batched submission path under load (one wire message per owning
  // shard per group of 8): in-process transport keeps the row cheap.
  traffic_modes.push_back({serve::TransportKind::kInProcess, false, true, 8});
  for (const auto& m : traffic_modes) {
    serve::ServeOptions so;
    so.num_shards = 4;
    so.transport = m.transport;
    so.colocate = m.colocate;
    so.connections_per_shard = clients;
    if (m.cache) so.cache_bytes = 64ull << 20;
    serve::ServingCluster cluster(*model, so);
    const auto r =
        m.batch > 1
            ? drive_load_batched(users, clients, per_client, m.batch,
                                 opt.seed,
                                 [&](const std::vector<VertexId>& group) {
                                   return cluster.router().topk_batch(group);
                                 })
            : drive_load(
                  users, clients, per_client, opt.seed,
                  [&](VertexId u) { return cluster.router().topk(u); });
    std::uint64_t fetches = 0, wire = 0;
    for (const auto& s : cluster.stats()) {
      fetches += s.remote_fetch_requests;
      wire += s.frontend_bytes_in + s.frontend_bytes_out +
              s.peer_bytes_out + s.peer_bytes_in;
    }
    const auto per_query = [&](std::uint64_t v) {
      return Table::fmt(static_cast<double>(v) /
                            static_cast<double>(r.queries), 2);
    };
    std::string name = mode_name(m.transport, m.colocate);
    if (m.cache) name += "+cache";
    if (m.batch > 1) name += "+batch" + std::to_string(m.batch);
    const auto rs = cluster.router().stats();
    traffic.add_row({name, "4", std::to_string(r.queries),
                     Table::fmt(r.wall_s, 4), Table::fmt(r.qps, 0),
                     Table::fmt(r.p50_us, 1), Table::fmt(r.p99_us, 1),
                     hit_pct(cluster.cache_stats()), per_query(fetches),
                     per_query(wire), std::to_string(rs.max_inflight)});
  }
  bench::finish(traffic, opt, "traffic");

  // ---- Phase 3: the serving fast path (ENFORCED). --------------------
  // 8 shards, remote-fetch, in-process transport: the identical Zipf
  // workload with the hot-row cache off, then on. Each cluster is
  // warmed with one full pass first and the fetch counters are measured
  // as deltas over a repeat of that stream — the steady state the cost
  // model describes: rows the working set already pulled are never
  // fetched again (the cacheless cluster re-fetches every one). The
  // cache must cut remote fetches per query by >= 2x; counter-based, so
  // deterministic up to benign cold-row races (two clients missing the
  // same row concurrently), orders of magnitude inside the 2x margin.
  Table fastpath({"config", "shards", "queries", "wall s",
                  "queries_per_second", "p50_us", "p99_us", "hit %",
                  "fetches/query", "max inflight"});
  double fast_fetches_pq[2] = {0.0, 0.0};
  double fast_p99[2] = {0.0, 0.0};
  for (const bool cached : {false, true}) {
    serve::ServeOptions so;
    so.num_shards = 8;
    so.colocate = false;
    so.connections_per_shard = clients;
    if (cached) so.cache_bytes = 64ull << 20;
    serve::ServingCluster cluster(*model, so);
    const auto topk = [&](VertexId u) { return cluster.router().topk(u); };
    const auto counters = [&] {
      std::uint64_t f = 0, h = 0, m = 0;
      for (const auto& s : cluster.stats()) {
        f += s.remote_fetch_requests;
        h += s.cache_hits;
        m += s.cache_misses;
      }
      return std::array<std::uint64_t, 3>{f, h, m};
    };
    (void)drive_load(users, clients, per_client, opt.seed + 3, topk);
    const auto before = counters();
    const auto r =
        drive_load(users, clients, per_client, opt.seed + 3, topk);
    const auto after = counters();
    const std::uint64_t fetches = after[0] - before[0];
    const std::uint64_t hits = after[1] - before[1];
    const std::uint64_t lookups = hits + (after[2] - before[2]);
    fast_fetches_pq[cached ? 1 : 0] =
        static_cast<double>(fetches) / static_cast<double>(r.queries);
    fast_p99[cached ? 1 : 0] = r.p99_us;
    const auto rs = cluster.router().stats();
    fastpath.add_row(
        {cached ? "fetch+cache" : "fetch+nocache", "8",
         std::to_string(r.queries), Table::fmt(r.wall_s, 4),
         Table::fmt(r.qps, 0), Table::fmt(r.p50_us, 1),
         Table::fmt(r.p99_us, 1),
         lookups == 0 ? "-"
                      : Table::fmt(100.0 * static_cast<double>(hits) /
                                       static_cast<double>(lookups), 1),
         Table::fmt(fast_fetches_pq[cached ? 1 : 0], 2),
         std::to_string(rs.max_inflight)});
  }
  bench::finish(fastpath, opt, "fastpath");
  const double fetch_reduction =
      fast_fetches_pq[1] > 0.0
          ? fast_fetches_pq[0] / fast_fetches_pq[1]
          : std::numeric_limits<double>::infinity();
  const std::string reduction_str =
      std::isinf(fetch_reduction) ? "eliminated entirely"
                                  : Table::fmt(fetch_reduction, 1) +
                                        "x fewer";
  std::cout << "fastpath: " << Table::fmt(fast_fetches_pq[0], 2) << " -> "
            << Table::fmt(fast_fetches_pq[1], 2) << " fetches/query ("
            << reduction_str << "), p99 " << Table::fmt(fast_p99[0], 1)
            << " -> " << Table::fmt(fast_p99[1], 1) << " us\n\n";

  // ---- Phase 4: query tail latency while the update PLANE absorbs. ---
  // The live sharded tier: LiveShards behind the same QueryRouter, the
  // UpdateRouter fanning insert batches to every shard. No freeze, no
  // re-shard — the burst mutates the serving cluster in place while the
  // Zipf clients stay on it.
  serve::ServeOptions live_so;
  live_so.num_shards = 4;
  live_so.colocate = false;  // live serving fetches; versions keep it fresh
  live_so.connections_per_shard = clients;
  live_so.cache_bytes = 64ull << 20;
  serve::ServingCluster live_cluster(model, base_graph, live_so);
  const auto live_topk = [&](VertexId u) {
    return live_cluster.router().topk(u);
  };

  const auto idle =
      drive_load(users, clients, per_client, opt.seed + 1, live_topk);

  // Writer burst: the held-back edges stream through the plane in small
  // batches. Each apply() round trip IS the staleness window — the time
  // from submitting an insert until every shard has republished its
  // owned stale rows (a served answer can lag a submitted insert by at
  // most one window; queries never wait on it).
  constexpr std::size_t kUpdateBatch = 8;
  std::vector<double> window_us;
  window_us.reserve(inserts.size() / kUpdateBatch + 1);
  double burst_wall = 0.0;
  std::thread writer([&] {
    WallTimer t;
    auto& plane = live_cluster.update_router();
    for (std::size_t at = 0; at < inserts.size(); at += kUpdateBatch) {
      const std::size_t len =
          std::min(kUpdateBatch, inserts.size() - at);
      WallTimer w;
      (void)plane.apply({inserts.data() + at, len});
      window_us.push_back(w.seconds() * 1e6);
    }
    burst_wall = t.seconds();
  });
  const auto burst = drive_load(users, clients, per_client, opt.seed + 2,
                                live_topk);
  writer.join();

  // The same cluster — never rebuilt — now serves the union graph's
  // model, and is held to the bit-identity bar against a from-scratch
  // fit on it (ENFORCED).
  const std::uint64_t plane_version =
      live_cluster.update_router().barrier();
  const auto union_model = std::make_shared<const PredictorModel>(
      predictor.fit(union_graph));
  const QueryEngine union_engine(union_model);
  std::size_t live_mismatches = 0;
  for (const VertexId u : sample) {
    if (live_cluster.router().topk(u) != union_engine.topk(u)) {
      ++live_mismatches;
    }
  }

  const auto us = live_cluster.update_router().stats();
  Table update({"phase", "queries", "wall s", "queries_per_second",
                "p50_us", "p99_us", "stale_p50_us", "stale_p99_us"});
  update.add_row({"queries-idle", std::to_string(idle.queries),
                  Table::fmt(idle.wall_s, 4), Table::fmt(idle.qps, 0),
                  Table::fmt(idle.p50_us, 1), Table::fmt(idle.p99_us, 1),
                  "-", "-"});
  update.add_row({"queries-during-burst", std::to_string(burst.queries),
                  Table::fmt(burst.wall_s, 4), Table::fmt(burst.qps, 0),
                  Table::fmt(burst.p50_us, 1), Table::fmt(burst.p99_us, 1),
                  Table::fmt(percentile(window_us, 0.50), 1),
                  Table::fmt(percentile(window_us, 0.99), 1)});
  bench::finish(update, opt, "update");
  std::cout << "update plane: " << us.edges << " inserts in "
            << us.batches << " batches over " << Table::fmt(burst_wall, 4)
            << " s; " << us.gamma_rows + us.sims_rows + us.hop2_rows
            << " stale rows republished (" << us.gamma_rows << " gamma, "
            << us.sims_rows << " sims, " << us.hop2_rows << " hop2), "
            << us.bytes_sent + us.bytes_received
            << " wire B; cluster version " << plane_version << "\n\n";

  // ---- Phase 5: sliding-window replay through the plane. -------------
  // A fresh live cluster replays the same stream in timestamp order
  // with a window of half its length: each insert batch past capacity
  // is followed by an op-6 remove batch expiring the edges that slid
  // out, while the Zipf clients stay on the cluster. Every op round
  // trip (insert or remove) is a staleness window sample.
  serve::ServingCluster window_cluster(model, base_graph, live_so);
  const auto window_topk = [&](VertexId u) {
    return window_cluster.router().topk(u);
  };
  const std::size_t window =
      std::max<std::size_t>(kUpdateBatch, inserts.size() / 2);
  std::vector<double> window_op_us;
  window_op_us.reserve(2 * (inserts.size() / kUpdateBatch + 1));
  double window_wall = 0.0;
  std::size_t expired = 0;
  std::thread window_writer([&] {
    WallTimer t;
    auto& plane = window_cluster.update_router();
    for (std::size_t at = 0; at < inserts.size(); at += kUpdateBatch) {
      const std::size_t len = std::min(kUpdateBatch, inserts.size() - at);
      WallTimer w;
      (void)plane.apply({inserts.data() + at, len});
      window_op_us.push_back(w.seconds() * 1e6);
      // Expire everything that slid out: the live inserts are always
      // the most recent `window` of the stream.
      const std::size_t done = at + len;
      const std::size_t target = done > window ? done - window : 0;
      if (target > expired) {
        WallTimer w2;
        (void)plane.remove(
            {inserts.data() + expired, target - expired});
        window_op_us.push_back(w2.seconds() * 1e6);
        expired = target;
      }
    }
    window_wall = t.seconds();
  });
  const auto wreplay = drive_load(users, clients, per_client, opt.seed + 4,
                                  window_topk);
  window_writer.join();

  // End-of-replay gate: the cluster serves the window graph's model.
  const std::uint64_t window_version =
      window_cluster.update_router().barrier();
  GraphBuilder window_builder(union_graph.num_vertices());
  for (const Edge& e : base_graph->edges()) {
    window_builder.add_edge(e.src, e.dst);
  }
  for (std::size_t i = expired; i < inserts.size(); ++i) {
    window_builder.add_edge(inserts[i].src, inserts[i].dst);
  }
  const auto window_model = std::make_shared<const PredictorModel>(
      predictor.fit(window_builder.build()));
  const QueryEngine window_engine(window_model);
  std::size_t window_mismatches = 0;
  for (const VertexId u : sample) {
    if (window_cluster.router().topk(u) != window_engine.topk(u)) {
      ++window_mismatches;
    }
  }

  const auto ws = window_cluster.update_router().stats();
  const double window_churn =
      static_cast<double>(ws.edges + ws.removals) /
      std::max(window_wall, 1e-12);
  Table win({"phase", "queries", "wall s", "queries_per_second", "p50_us",
             "p99_us", "stale_p50_us", "stale_p99_us"});
  win.add_row({"queries-during-window-replay",
               std::to_string(wreplay.queries),
               Table::fmt(wreplay.wall_s, 4), Table::fmt(wreplay.qps, 0),
               Table::fmt(wreplay.p50_us, 1), Table::fmt(wreplay.p99_us, 1),
               Table::fmt(percentile(window_op_us, 0.50), 1),
               Table::fmt(percentile(window_op_us, 0.99), 1)});
  bench::finish(win, opt, "window");
  std::cout << "window replay (W=" << window << "): " << ws.edges
            << " inserts + " << ws.removals << " removals ("
            << ws.remove_batches << " remove batches) over "
            << Table::fmt(window_wall, 4) << " s = "
            << Table::fmt(window_churn, 0)
            << " churn ops/s; cluster version " << window_version << "\n\n";

  // ---- Gates. --------------------------------------------------------
  if (total_mismatches > 0) {
    std::cerr << "ERROR: " << total_mismatches
              << " sharded answers diverged from the single-process "
                 "QueryEngine\n";
    return 1;
  }
  if (live_mismatches > 0) {
    std::cerr << "ERROR: " << live_mismatches
              << " live-plane answers diverged from the union-graph "
                 "refit after the insert burst\n";
    return 1;
  }
  if (window_mismatches > 0) {
    std::cerr << "ERROR: " << window_mismatches
              << " answers diverged from the window-graph refit after "
                 "the sliding-window replay\n";
    return 1;
  }
  if (fetch_reduction < 2.0) {
    std::cerr << "ERROR: hot-row cache cut fetches/query only "
              << Table::fmt(fetch_reduction, 2)
              << "x at 8 shards (fast path requires >= 2x): "
              << Table::fmt(fast_fetches_pq[0], 2) << " -> "
              << Table::fmt(fast_fetches_pq[1], 2) << "\n";
    return 1;
  }
  std::cout << "correctness: " << sample.size() << " Zipf users × "
            << correctness_configs
            << " cluster configs identical to QueryEngine; live plane "
               "identical to the union-graph refit post-burst; windowed "
               "replay identical to the window-graph refit; "
               "warm-cache repeat fetches "
            << reduction_str << "\n";
  return 0;
}
