// Table 6 + the §5.9 distribution-benefit claim.
//
// Part 1 (Table 6): best-recall-in-shortest-time Cassovary configuration
// vs SNAPLE with klocal=20, both on one type-II machine. The paper
// reports SNAPLE winning both recall and time (speedups 2.03 and 9.02).
//
// Part 2 (§5.9): "the recall obtained by Cassovary on twitter-rv is
// obtained by SNAPLE in 177s when using linearSum with klocal=5 on 256
// type-I cores ... a speedup of 30.62". We reproduce the comparison:
// SNAPLE on the simulated 256-core cluster at klocal=5 vs Cassovary's
// best single-machine recall point.
#include <iostream>

#include "bench_common.hpp"

namespace {

struct CassPoint {
  double recall = 0.0;
  double seconds = 0.0;
  std::size_t walks = 0;
  std::size_t depth = 0;
};

/// The paper picks Cassovary's "best recall in the shortest time": sweep
/// the Figure-11 grid and keep the highest-recall point (ties -> faster).
CassPoint best_cassovary(const snaple::eval::PreparedDataset& ds,
                         std::uint64_t seed) {
  CassPoint best;
  for (const std::size_t w : {10ul, 100ul, 1000ul}) {
    for (const std::size_t d : {3ul, 4ul, 5ul}) {
      snaple::cassovary::WalkConfig cfg;
      cfg.walks = w;
      cfg.depth = d;
      cfg.seed = seed;
      const auto out = snaple::eval::run_cassovary_experiment(ds, cfg);
      if (out.recall > best.recall ||
          (out.recall == best.recall && out.wall_seconds < best.seconds)) {
        best = {out.recall, out.wall_seconds, w, d};
      }
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Table 6 — SNAPLE vs the single-machine comparator",
      "one type-II machine; Cassovary at its best Figure-11 "
      "configuration vs SNAPLE klocal=20.");

  struct DatasetPoint {
    const char* name;
    double base_scale;
  };
  const DatasetPoint datasets[] = {{"livejournal", 0.4}, {"twitter", 0.2}};

  Table table({"dataset", "cassovary recall", "cassovary time (s)",
               "snaple recall", "snaple time (s)", "speedup"});
  std::vector<std::pair<std::string, CassPoint>> best_points;
  std::vector<eval::PreparedDataset> prepared;

  for (const auto& [name, base_scale] : datasets) {
    prepared.push_back(bench::prepare(name, base_scale, opt));
    const auto& ds = prepared.back();
    const CassPoint cass = best_cassovary(ds, opt.seed);
    best_points.emplace_back(ds.name, cass);

    SnapleConfig cfg;
    cfg.k_local = 20;
    const auto snaple_out = eval::run_snaple_experiment(
        ds, cfg, gas::ClusterConfig::single_machine(20));
    table.add_row(
        {ds.name, Table::fmt(cass.recall, 3), Table::fmt(cass.seconds, 2),
         Table::fmt(snaple_out.recall, 3),
         Table::fmt(snaple_out.wall_seconds, 2),
         Table::fmt(cass.seconds / std::max(1e-9, snaple_out.wall_seconds),
                    2)});
  }
  bench::finish(table, opt);

  // ---- Part 2: §5.9 — matching Cassovary's recall on 256 cores. ----
  // The paper finds the cheapest SNAPLE configuration whose recall
  // reaches what Cassovary achieved, then compares times ("the recall
  // obtained by Cassovary ... is obtained by SNAPLE in 2min57s ... a
  // speedup of 30.62"). Same method here: smallest klocal matching the
  // comparator's recall.
  std::cout << "--- §5.9 — cheapest SNAPLE on 32 type-I machines (256 "
               "cores) matching best Cassovary recall ---\n";
  Table dist({"dataset", "cassovary recall", "cassovary time (s)", "klocal",
              "snaple-256c recall", "snaple-256c sim time (s)", "speedup"});
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    const auto& ds = prepared[i];
    const auto& cass = best_points[i].second;
    eval::Outcome out;
    std::size_t chosen = 0;
    for (const std::size_t klocal : {5ul, 10ul, 20ul, 40ul, 80ul}) {
      SnapleConfig cfg;
      cfg.k_local = klocal;
      out = eval::run_snaple_experiment(ds, cfg,
                                        gas::ClusterConfig::type_i(32));
      chosen = klocal;
      if (out.recall >= cass.recall) break;
    }
    dist.add_row({best_points[i].first, Table::fmt(cass.recall, 3),
                  Table::fmt(cass.seconds, 2), std::to_string(chosen),
                  Table::fmt(out.recall, 3),
                  Table::fmt(out.simulated_seconds, 3),
                  Table::fmt(cass.seconds /
                                 std::max(1e-9, out.simulated_seconds),
                             1)});
  }
  bench::finish(dist, opt);
  return 0;
}
