// Table 5: SNAPLE vs a direct GAS implementation of link prediction.
//
// Paper setup (§5.3): BASELINE and 12 SNAPLE configurations — three
// scores (linearSum, counter, PPR) under four (thrΓ, klocal) regimes
// {∞,20}² — on gowalla, pokec and livejournal, 4 type-II nodes (80
// cores). Reported: recall and execution time, with gains/speedups vs
// BASELINE in brackets. The paper's companion §5.3 observation — orkut
// and twitter-rv "cause BASELINE to fail by exhausting the available
// memory" — is reproduced at the end with proportionally scaled budgets.
//
// Expected shape: SNAPLE beats BASELINE on recall AND time everywhere;
// klocal is the dominant speedup lever; thrΓ shaves a little more time at
// a small recall cost.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Table 5 — SNAPLE vs direct GraphLab-style implementation",
      "recall and simulated execution time on 4 type-II nodes (80 cores); "
      "gains/speedups vs BASELINE in brackets.");

  const auto cluster = gas::ClusterConfig::type_ii(4);

  struct Regime {
    const char* label;
    std::size_t thr;
    std::size_t klocal;
  };
  const Regime regimes[] = {
      {"thr=inf klocal=inf", kUnlimited, kUnlimited},
      {"thr=20  klocal=inf", 20, kUnlimited},
      {"thr=inf klocal=20", kUnlimited, 20},
      {"thr=20  klocal=20", 20, 20},
  };
  const ScoreKind scores[] = {ScoreKind::kLinearSum, ScoreKind::kCounter,
                              ScoreKind::kPpr};

  Table table({"dataset", "config", "score", "recall", "(gain)",
               "sim time (s)", "(speedup)", "host time (s)"});

  for (const char* name : {"gowalla", "pokec", "livejournal"}) {
    const auto ds = bench::prepare(name, 0.25, opt);

    const auto base = eval::run_baseline_experiment(
        ds, baseline::BaselineConfig{}, cluster);
    table.add_row({ds.name, "BASELINE", "jaccard",
                   Table::fmt(base.recall, 3), "",
                   Table::fmt(base.simulated_seconds, 3), "",
                   Table::fmt(base.wall_seconds, 2)});

    for (const auto& regime : regimes) {
      for (const ScoreKind score : scores) {
        SnapleConfig cfg;
        cfg.score = score;
        cfg.thr_gamma = regime.thr;
        cfg.k_local = regime.klocal;
        const auto out = eval::run_snaple_experiment(ds, cfg, cluster);
        table.add_row(
            {ds.name, regime.label, score_name(score),
             Table::fmt(out.recall, 3),
             bench::parens(Table::fmt(out.recall / base.recall, 1)),
             Table::fmt(out.simulated_seconds, 3),
             bench::parens(
                 Table::fmt(base.simulated_seconds /
                                std::max(1e-9, out.simulated_seconds),
                            1)),
             Table::fmt(out.wall_seconds, 2)});
      }
    }
  }
  bench::finish(table, opt);

  // §5.3: the two largest datasets exhaust BASELINE's memory while SNAPLE
  // completes under the same proportional budget.
  std::cout << "--- §5.3 resource-exhaustion check "
               "(per-machine budgets scaled from 128 GB type-II) ---\n";
  Table oom({"dataset", "budget MB/machine", "BASELINE", "SNAPLE(20,20)"});
  for (const char* name : {"orkut", "twitter"}) {
    const double base_scale = (std::string(name) == "orkut") ? 0.25 : 0.12;
    const auto ds = bench::prepare(name, base_scale, opt);
    const std::size_t budget = bench::scaled_budget(name, ds.train, 128.0);
    const auto tight = gas::ClusterConfig::type_ii(4, budget);
    const auto base_out = eval::run_baseline_experiment(
        ds, baseline::BaselineConfig{}, tight);
    SnapleConfig cfg;
    cfg.thr_gamma = 200;
    cfg.k_local = 20;
    const auto snaple_out = eval::run_snaple_experiment(ds, cfg, tight);
    oom.add_row(
        {ds.name, Table::fmt(static_cast<double>(budget) / 1e6, 0),
         base_out.out_of_memory
             ? "OOM (as in the paper)"
             : "recall " + Table::fmt(base_out.recall, 3),
         snaple_out.out_of_memory
             ? "OOM"
             : "recall " + Table::fmt(snaple_out.recall, 3) + " in " +
                   Table::fmt(snaple_out.simulated_seconds, 2) + "s"});
  }
  bench::finish(oom, opt);
  return 0;
}
