// Figure 5: SNAPLE scales linearly with graph size.
//
// Paper setup (§5.4): linearSum on livejournal (68M), orkut (223M) and
// twitter-rv (1.4B edges), klocal ∈ {40, 80}, on type-I clusters of
// 64/128/256 cores (8/16/32 machines) and type-II clusters of 80/160
// cores (4/8 machines). Missing points = configurations not fitting into
// memory (twitter @ klocal=80 on 8 type-I machines).
//
// Expected shape: execution time grows ~linearly in edges; more cores
// shift the whole curve down; klocal=80 costs ~70% more than 40; the
// tightest type-I configuration OOMs on the twitter replica.
//
// Since PR 3 the sweep runs the *sharded* engine: every simulated
// machine owns its graph shard and replica-local vertex data, and the
// reported network traffic is the measured size of the exchange buffers
// (bit-identical results and accounting to the flat engine — the
// equivalence property test pins that, so the figure is unchanged).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 5 — execution time vs graph size across cluster sizes",
      "simulated seconds per dataset/cluster, sharded execution; OOM "
      "marks configurations whose (scaled) memory budget is exhausted, "
      "as in the paper's missing points.");

  struct ClusterPoint {
    const char* label;
    bool type_i;
    std::size_t machines;
    double paper_gb;
  };
  const ClusterPoint clusters[] = {
      {"type-I  64 cores", true, 8, 32.0},
      {"type-I  128 cores", true, 16, 32.0},
      {"type-I  256 cores", true, 32, 32.0},
      {"type-II 80 cores", false, 4, 128.0},
      {"type-II 160 cores", false, 8, 128.0},
  };

  Table table({"dataset", "edges (M)", "klocal", "cluster", "sim time (s)",
               "host time (s)", "net MB"});

  struct DatasetPoint {
    const char* name;
    double base_scale;
  };
  // Base scales keep the paper's relative edge ordering while letting the
  // full sweep finish in minutes.
  const DatasetPoint datasets[] = {
      {"livejournal", 0.5}, {"orkut", 0.5}, {"twitter", 0.5}};

  for (const auto& [name, base_scale] : datasets) {
    const auto ds = bench::prepare(name, base_scale, opt);
    const double edges_m =
        static_cast<double>(ds.train.num_edges()) / 1e6;
    for (const std::size_t klocal : {40ul, 80ul}) {
      for (const auto& cp : clusters) {
        const std::size_t budget =
            bench::scaled_budget(name, ds.train, cp.paper_gb);
        const auto cluster =
            cp.type_i ? gas::ClusterConfig::type_i(cp.machines, budget)
                      : gas::ClusterConfig::type_ii(cp.machines, budget);
        SnapleConfig cfg;
        cfg.k_local = klocal;
        const auto out = eval::run_snaple_experiment(
            ds, cfg, cluster, gas::PartitionStrategy::kGreedy, nullptr,
            gas::ExecutionMode::kSharded);
        table.add_row({ds.name, Table::fmt(edges_m, 2),
                       std::to_string(klocal), cp.label,
                       bench::fmt_or_oom(out, out.simulated_seconds, 3),
                       bench::fmt_or_oom(out, out.wall_seconds, 2),
                       bench::fmt_or_oom(
                           out, static_cast<double>(out.network_bytes) / 1e6,
                           1)});
      }
    }
  }
  bench::finish(table, opt);
  return 0;
}
