// Table 4: the datasets used in the evaluation.
//
// Prints the paper's dataset inventory next to the synthetic replicas this
// repository substitutes for them (docs/DATASETS.md), with the structural
// properties that matter for the reproduction: average degree and
// clustering coefficient.
#include <iostream>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "graph/degree.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Table 4 — The datasets used in the evaluation",
      "Paper datasets vs. the scaled synthetic replicas used here.");

  Table table({"dataset", "paper |V|", "paper |E|", "replica |V|",
               "replica |E|", "avg out-deg", "clustering", "domain"});
  for (const auto& spec : gen::dataset_specs()) {
    const CsrGraph g = gen::load_or_generate(spec.name, opt.scale, opt.seed);
    const auto deg = summarize_out_degrees(g);
    const double clust = clustering_coefficient(g, 4000, opt.seed);
    table.add_row({spec.name, Table::fmt_int(spec.paper_vertices),
                   Table::fmt_int(spec.paper_edges),
                   Table::fmt_int(g.num_vertices()),
                   Table::fmt_int(g.num_edges()), Table::fmt(deg.mean, 1),
                   Table::fmt(clust, 3), spec.domain});
  }
  bench::finish(table, opt);
  return 0;
}
