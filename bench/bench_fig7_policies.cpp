// Figure 7: impact of the vertex selection mechanism.
//
// Paper setup (§5.6): on livejournal, compare the three klocal selection
// policies — Γmax (keep most similar), Γmin (least similar), Γrnd
// (random) — for counter, linearSum and PPR, with klocal ∈ {5,10,20,40,80}.
//
// Expected shape: Γmax dominates at small klocal (the paper reports it
// doubling Γmin and beating Γrnd by ~50% at klocal=5); the three
// policies converge as klocal grows and the kept sets coincide.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 7 — recall per neighbor-selection policy",
      "livejournal replica; policies Γmax / Γmin / Γrnd across klocal.");

  const auto ds = bench::prepare("livejournal", 0.4, opt);
  const auto cluster = gas::ClusterConfig::type_ii(4);

  Table table({"score", "klocal", "recall Γmax", "recall Γmin",
               "recall Γrnd"});
  for (const ScoreKind score :
       {ScoreKind::kCounter, ScoreKind::kLinearSum, ScoreKind::kPpr}) {
    for (const std::size_t klocal : {5ul, 10ul, 20ul, 40ul, 80ul}) {
      std::array<double, 3> recalls{};
      const SelectionPolicy policies[] = {SelectionPolicy::kMax,
                                          SelectionPolicy::kMin,
                                          SelectionPolicy::kRandom};
      for (std::size_t i = 0; i < 3; ++i) {
        SnapleConfig cfg;
        cfg.score = score;
        cfg.k_local = klocal;
        cfg.policy = policies[i];
        recalls[i] = eval::run_snaple_experiment(ds, cfg, cluster).recall;
      }
      table.add_row({score_name(score), std::to_string(klocal),
                     Table::fmt(recalls[0], 3), Table::fmt(recalls[1], 3),
                     Table::fmt(recalls[2], 3)});
    }
  }
  bench::finish(table, opt);
  return 0;
}
