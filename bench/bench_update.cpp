// Incremental-update cost: what does keeping a served model fresh cost
// versus refitting it?
//
// DynamicModel (core/dynamic_model.hpp) applies an edge insert by
// recomputing only the stale rows — Γ̂(u), sims of {u} ∪ Γ⁻¹(u), and for
// K=3 the hop2 rows one in-hop further — instead of rerunning steps
// 1–2(b). This harness quantifies the gap on the ~1M-edge livejournal
// replica:
//
//   fit (base/union)   the offline model build — what "refit on every
//                      insert" would cost per edge
//   wrap               DynamicModel construction (tag verification)
//   insert 1-by-1      add_edge latency, measured over ~1k live inserts
//   insert batch-64    add_edges amortization over the same inserts
//   freshness          single-thread query latency on the live model,
//                      idle vs during a writer burst — reads are
//                      lock-free, so queries are never blocked; the
//                      latency delta IS the "queries blocked" time
//   window             timestamped-stream replay with a sliding window
//                      (ISSUE 10): the held-back edges arrive in stream
//                      order and each insert past capacity expires the
//                      oldest live edge as a removal — churn ops/sec
//                      plus per-op staleness p50/p99 (the op round
//                      trip: arrival until the model is updated)
//
// Acceptance (ISSUE 5 + 10): one insert must be ≥100× cheaper than the
// full refit wall, and the updated model must be bit-identical to a
// from-scratch fit on the union graph. Correctness is ENFORCED here
// (exit 1): freeze() must equal the union refit exactly, sampled live
// queries must match the refit-served answers, and the windowed model
// must equal a fit on the window graph (base + surviving inserts) —
// the timing rows stay report-only in CI, like bench_query.
#include <algorithm>
#include <atomic>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/dynamic_model.hpp"
#include "core/predictor.hpp"
#include "core/query_engine.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace snaple;

/// Times fn() best-of-N, repeating only while runs are fast (same idiom
/// as bench_query: smoke-scale rows should not be pure noise).
template <typename Fn>
double time_best(Fn&& fn, int max_reps = 3, double slow_enough_s = 0.5) {
  double best = 1e100;
  for (int rep = 0; rep < max_reps; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
    if (best >= slow_enough_s) break;
  }
  return best;
}

/// Non-owning view for serving stack-held live models.
template <typename T>
std::shared_ptr<const T> unowned(const T& ref) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>{}, &ref);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Incremental updates — per-insert cost vs full refit",
      "DynamicModel of ISSUE 5: live edge inserts recompute only the "
      "stale rows; this measures insert latency, batch amortization and "
      "query freshness against the full fit wall (acceptance: one "
      "insert >= 100x cheaper than a refit).");

  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = nullptr;
  if (opt.threads > 0) {
    own_pool = std::make_unique<ThreadPool>(opt.threads - 1);
    pool = own_pool.get();
  }

  // ~1M directed edges at --scale=1 (livejournal-s base 806k × 1.25).
  // The union graph is the replica; the serving tier starts from a base
  // that is missing ~1k of its edges and receives them as live inserts.
  const CsrGraph union_graph =
      gen::make_dataset("livejournal", 1.25 * opt.scale, opt.seed);
  const auto all_edges = union_graph.edges();
  const std::size_t want_inserts =
      std::min<std::size_t>(1024, all_edges.size() / 8);
  const std::size_t stride =
      std::max<std::size_t>(2, all_edges.size() / want_inserts);
  std::vector<Edge> inserts;
  GraphBuilder builder(union_graph.num_vertices());
  for (std::size_t i = 0; i < all_edges.size(); ++i) {
    if (i % stride == 1 && inserts.size() < want_inserts) {
      inserts.push_back(all_edges[i]);
    } else {
      builder.add_edge(all_edges[i].src, all_edges[i].dst);
    }
  }
  const auto base_graph =
      std::make_shared<const CsrGraph>(builder.build(pool));
  std::cout << "graph: " << union_graph.num_vertices() << " vertices, "
            << union_graph.num_edges() << " edges (" << inserts.size()
            << " held back as live inserts)\n\n";

  SnapleConfig cfg;
  cfg.k_local = 20;
  cfg.seed = opt.seed;
  const auto cluster = gas::ClusterConfig::single_machine(
      std::thread::hardware_concurrency());
  // Incremental updates need the insertion-stable edge placement.
  const LinkPredictor predictor(cfg, cluster,
                                gas::PartitionStrategy::kEdgeLocal);
  // Partition with cfg.seed, as LinkPredictor::fit would, so
  // DynamicModel's defaulted partition_seed matches the placements.
  const auto base_part = gas::Partitioning::create(
      *base_graph, cluster.num_machines, gas::PartitionStrategy::kEdgeLocal,
      cfg.seed);
  const auto union_part = gas::Partitioning::create(
      union_graph, cluster.num_machines, gas::PartitionStrategy::kEdgeLocal,
      cfg.seed);

  // ---- The offline walls: base fit (what we serve from) and union
  // refit (what every insert would cost without the incremental path).
  std::shared_ptr<const PredictorModel> base_model;
  const double fit_base_s = time_best([&] {
    base_model = std::make_shared<const PredictorModel>(
        predictor.fit_with_partitioning(*base_graph, base_part, pool));
  });
  PredictorModel refit;
  const double refit_s = time_best([&] {
    refit = predictor.fit_with_partitioning(union_graph, union_part, pool);
  });

  // ---- Wrap + inserts, one at a time and batched. ----
  std::unique_ptr<DynamicModel> dyn;
  const double wrap_s = time_best([&] {
    dyn = std::make_unique<DynamicModel>(base_model, base_graph,
                                         std::nullopt, pool);
  });

  DynamicModel::UpdateStats totals;
  WallTimer insert_timer;
  for (const Edge& e : inserts) {
    const auto stats = dyn->add_edge(e.src, e.dst);
    totals.edges += stats.edges;
    totals.gamma_rows += stats.gamma_rows;
    totals.sims_rows += stats.sims_rows;
    totals.hop2_rows += stats.hop2_rows;
  }
  const double insert_s = insert_timer.seconds();
  const double insert_us =
      insert_s * 1e6 / static_cast<double>(inserts.size());

  DynamicModel batched(base_model, base_graph, std::nullopt, pool);
  WallTimer batch_timer;
  for (std::size_t at = 0; at < inserts.size(); at += 64) {
    const std::size_t len = std::min<std::size_t>(64, inserts.size() - at);
    (void)batched.add_edges({inserts.data() + at, len});
  }
  const double batch_s = batch_timer.seconds();
  const double batch_us =
      batch_s * 1e6 / static_cast<double>(inserts.size());

  Table update({"phase", "wall s", "per-edge us", "rows recomputed"});
  update.add_row({"fit-base", Table::fmt(fit_base_s, 4), "-", "-"});
  update.add_row({"fit-union (refit)", Table::fmt(refit_s, 4),
                  Table::fmt(refit_s * 1e6, 0), "-"});
  update.add_row({"wrap (DynamicModel)", Table::fmt(wrap_s, 4), "-", "-"});
  update.add_row({"insert 1-by-1", Table::fmt(insert_s, 4),
                  Table::fmt(insert_us, 1),
                  std::to_string(totals.gamma_rows + totals.sims_rows +
                                 totals.hop2_rows)});
  update.add_row({"insert batch-64", Table::fmt(batch_s, 4),
                  Table::fmt(batch_us, 1), "-"});
  bench::finish(update, opt, "update");

  // ---- Freshness: query latency idle vs during a writer burst. ----
  const QueryEngine live{unowned(*dyn)};
  const VertexId n = union_graph.num_vertices();
  const std::size_t sample = 512;
  const VertexId qstride =
      std::max<VertexId>(1, n / static_cast<VertexId>(sample));

  auto sweep = [&](std::size_t rounds) {
    for (std::size_t r = 0; r < rounds; ++r) {
      for (VertexId u = 0; u < n; u += qstride) (void)live.topk(u);
    }
  };
  sweep(1);  // warm the per-thread scratch
  const double idle_s = time_best([&] { sweep(1); });
  const double idle_us =
      idle_s * 1e6 / static_cast<double>(n / qstride + 1);

  // Writer burst on a third model (the first two already hold the
  // inserts); one reader thread measures latency while it runs.
  DynamicModel bursty(base_model, base_graph, std::nullopt, pool);
  const QueryEngine busy{unowned(bursty)};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> burst_queries{0};
  std::atomic<std::uint64_t> burst_ns{0};
  std::thread reader([&] {
    VertexId u = 0;
    (void)busy.topk(0);  // warm this thread's scratch
    while (!done.load(std::memory_order_relaxed)) {
      WallTimer t;
      (void)busy.topk(u);
      burst_ns.fetch_add(static_cast<std::uint64_t>(t.seconds() * 1e9),
                         std::memory_order_relaxed);
      burst_queries.fetch_add(1, std::memory_order_relaxed);
      u = (u + qstride) % n;
    }
  });
  WallTimer burst_timer;
  for (const Edge& e : inserts) (void)bursty.add_edge(e.src, e.dst);
  const double burst_wall_s = burst_timer.seconds();
  done.store(true);
  reader.join();
  const double burst_us =
      burst_queries.load() > 0
          ? static_cast<double>(burst_ns.load()) / 1e3 /
                static_cast<double>(burst_queries.load())
          : 0.0;

  Table fresh({"mode", "queries", "mean latency us"});
  fresh.add_row({"idle", std::to_string(n / qstride + 1),
                 Table::fmt(idle_us, 1)});
  fresh.add_row({"during writer burst", std::to_string(burst_queries.load()),
                 Table::fmt(burst_us, 1)});
  bench::finish(fresh, opt, "freshness");

  const double speedup = refit_s / std::max(insert_us / 1e6, 1e-12);
  Table summary({"what", "value"});
  summary.add_row({"refit wall / one insert", Table::fmt(speedup, 0)});
  summary.add_row(
      {"writer burst wall s (reader attached)",
       Table::fmt(burst_wall_s, 4)});
  summary.add_row({"overlay MB after " + std::to_string(inserts.size()) +
                       " inserts",
                   Table::fmt(static_cast<double>(dyn->overlay_bytes()) /
                                  1e6, 2)});
  bench::finish(summary, opt, "summary");

  std::cout << "one insert vs full refit: " << Table::fmt(speedup, 0)
            << "x (acceptance bar: 100x at scale 1)\n";

  // ---- Sliding window: timestamped-stream replay with expiry. ----
  // Stream order IS timestamp order. A window of half the stream keeps
  // every insert also exercising the removal path once it slides out;
  // per-op latency is the staleness window (arrival -> model updated).
  const std::size_t window = std::max<std::size_t>(1, inserts.size() / 2);
  DynamicModel windowed(base_model, base_graph, std::nullopt, pool);
  std::vector<double> op_us;
  op_us.reserve(2 * inserts.size());
  std::size_t window_rows = 0;
  WallTimer window_timer;
  for (std::size_t i = 0; i < inserts.size(); ++i) {
    {
      WallTimer t;
      const auto stats = windowed.add_edge(inserts[i].src, inserts[i].dst);
      op_us.push_back(t.seconds() * 1e6);
      window_rows += stats.gamma_rows + stats.sims_rows + stats.hop2_rows;
    }
    if (i >= window) {
      const Edge old = inserts[i - window];
      WallTimer t;
      const auto stats = windowed.remove_edge(old.src, old.dst);
      op_us.push_back(t.seconds() * 1e6);
      window_rows += stats.gamma_rows + stats.sims_rows + stats.hop2_rows;
    }
  }
  const double window_s = window_timer.seconds();
  const double churn =
      static_cast<double>(op_us.size()) / std::max(window_s, 1e-12);

  Table win({"phase", "ops", "wall s", "ops_per_second", "stale_p50_us",
             "stale_p99_us", "rows recomputed"});
  win.add_row({"windowed replay (W=" + std::to_string(window) + ")",
               std::to_string(op_us.size()), Table::fmt(window_s, 4),
               Table::fmt(churn, 0), Table::fmt(percentile(op_us, 0.50), 1),
               Table::fmt(percentile(op_us, 0.99), 1),
               std::to_string(window_rows)});
  bench::finish(win, opt, "window");

  // ---- Correctness (ENFORCED): incremental ≡ refit, bit for bit. ----
  const auto frozen = dyn->freeze();
  const auto frozen_batched = batched.freeze();
  if (!(frozen == refit) || !(frozen_batched == refit)) {
    std::cerr << "ERROR: incrementally updated model diverges from the "
                 "union-graph refit\n";
    return 1;
  }
  const QueryEngine fresh_server(
      std::make_shared<const PredictorModel>(std::move(refit)));
  std::size_t mismatches = 0;
  for (VertexId u = 0; u < n; u += qstride) {
    if (live.topk(u) != fresh_server.topk(u)) ++mismatches;
  }
  if (mismatches > 0) {
    std::cerr << "ERROR: " << mismatches
              << " live queries diverged from the refit-served answers\n";
    return 1;
  }
  // End-of-replay gate: the windowed model must equal a from-scratch
  // fit on the window graph — base plus the inserts still inside the
  // window (every older insert was expired as a removal).
  GraphBuilder window_builder(union_graph.num_vertices());
  for (const Edge& e : base_graph->edges()) {
    window_builder.add_edge(e.src, e.dst);
  }
  for (std::size_t i = inserts.size() - window; i < inserts.size(); ++i) {
    window_builder.add_edge(inserts[i].src, inserts[i].dst);
  }
  const CsrGraph window_graph = window_builder.build(pool);
  const auto window_part = gas::Partitioning::create(
      window_graph, cluster.num_machines, gas::PartitionStrategy::kEdgeLocal,
      cfg.seed);
  const PredictorModel window_refit =
      predictor.fit_with_partitioning(window_graph, window_part, pool);
  if (!(windowed.freeze() == window_refit)) {
    std::cerr << "ERROR: windowed-replay model diverges from the "
                 "window-graph refit\n";
    return 1;
  }
  std::cout << "correctness: updated model bit-identical to the union "
               "refit (1-by-1 and batched); "
            << (n / qstride + 1) << " live queries identical; windowed "
               "replay bit-identical to the window-graph refit\n";
  return 0;
}
