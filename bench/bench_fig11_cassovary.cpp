// Figure 11: the single-machine random-walk comparator.
//
// Paper setup (§5.9): Cassovary-style Monte-Carlo PPR on one type-II
// machine — w ∈ {10,100,1000} walks per vertex, depth d ∈ {3,4,5,10} —
// on livejournal and twitter.
//
// Expected shape: recall saturates in d (d=3 is already close to the
// best); larger w buys recall but costs time near-linearly.
#include <iostream>

#include "bench_common.hpp"
#include "eval/metrics.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 11 — recall/time of random-walk PPR (Cassovary stand-in)",
      "single machine; w walks of depth d per vertex, top-5 visited.");

  struct DatasetPoint {
    const char* name;
    double base_scale;
  };
  const DatasetPoint datasets[] = {{"livejournal", 0.4}, {"twitter", 0.2}};

  Table table({"dataset", "w", "d", "recall", "time (s)",
               "walk steps (M)"});
  for (const auto& [name, base_scale] : datasets) {
    const auto ds = bench::prepare(name, base_scale, opt);
    for (const std::size_t w : {10ul, 100ul, 1000ul}) {
      for (const std::size_t d : {3ul, 4ul, 5ul, 10ul}) {
        cassovary::WalkConfig cfg;
        cfg.walks = w;
        cfg.depth = d;
        cfg.seed = opt.seed;
        const cassovary::RandomWalkEngine engine(ds.train);
        WallTimer timer;
        const auto result = engine.predict_all(cfg);
        const double seconds = timer.seconds();
        const double recall =
            eval::recall(result.predictions, ds.hidden);
        table.add_row({ds.name, std::to_string(w), std::to_string(d),
                       Table::fmt(recall, 3), Table::fmt(seconds, 2),
                       Table::fmt(
                           static_cast<double>(result.total_steps) / 1e6,
                           1)});
      }
    }
  }
  bench::finish(table, opt);
  return 0;
}
