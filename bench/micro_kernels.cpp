// google-benchmark micro suite: the hot kernels behind the experiment
// harnesses, plus the docs/ARCHITECTURE.md ablations (ScoreMap vs
// unordered_map,
// greedy vs hash vertex-cuts).
#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "cassovary/random_walk.hpp"
#include "core/similarity.hpp"
#include "gas/partition.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/gen/generators.hpp"
#include "util/rng.hpp"
#include "util/score_map.hpp"
#include "util/simd.hpp"
#include "util/top_k.hpp"

namespace snaple {
namespace {

std::vector<VertexId> sorted_ids(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<VertexId>(rng.next_below(n * 8)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---- raw similarity (the step-2 kernel) ----

void BM_Jaccard(benchmark::State& state) {
  const auto a = sorted_ids(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = sorted_ids(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jaccard(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_Jaccard)->Arg(16)->Arg(64)->Arg(200)->Arg(1000);

// ---- top-k selection (the argtopk kernel) ----

void BM_TopK(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::pair<VertexId, double>> items;
  for (int i = 0; i < 4096; ++i) {
    items.emplace_back(static_cast<VertexId>(i), rng.next_double());
  }
  for (auto _ : state) {
    TopK<VertexId, double> top(static_cast<std::size_t>(state.range(0)));
    for (const auto& [id, s] : items) top.offer(id, s);
    benchmark::DoNotOptimize(top.take_items());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TopK)->Arg(5)->Arg(20)->Arg(80);

// ---- score-map merge (the step-3 kernel) — ablation vs unordered_map ----

void BM_ScoreMapAccumulate(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 6400; ++i) {
    keys.push_back(static_cast<std::uint32_t>(rng.next_below(1600)));
  }
  ScoreMap map(64);
  auto plus = [](float a, float b) { return a + b; };
  for (auto _ : state) {
    map.clear();
    for (const auto k : keys) map.accumulate(k, 0.5f, 1, plus);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_ScoreMapAccumulate);

void BM_UnorderedMapAccumulate(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 6400; ++i) {
    keys.push_back(static_cast<std::uint32_t>(rng.next_below(1600)));
  }
  std::unordered_map<std::uint32_t, std::pair<float, std::uint32_t>> map;
  for (auto _ : state) {
    map.clear();
    for (const auto k : keys) {
      auto [it, inserted] = map.try_emplace(k, 0.5f, 1);
      if (!inserted) {
        it->second.first += 0.5f;
        it->second.second += 1;
      }
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_UnorderedMapAccumulate);

// ---- vertex-cut partitioning — greedy vs hash ablation ----

const CsrGraph& partition_graph() {
  static const CsrGraph g = gen::barabasi_albert(20000, 6, 7);
  return g;
}

void BM_PartitionHash(benchmark::State& state) {
  const CsrGraph& g = partition_graph();
  double rf = 0.0;
  for (auto _ : state) {
    const auto p =
        gas::Partitioning::create(g, 16, gas::PartitionStrategy::kHash);
    rf = p.replication_factor();
    benchmark::DoNotOptimize(rf);
  }
  state.counters["replication_factor"] = rf;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_PartitionHash);

void BM_PartitionGreedy(benchmark::State& state) {
  const CsrGraph& g = partition_graph();
  double rf = 0.0;
  for (auto _ : state) {
    const auto p =
        gas::Partitioning::create(g, 16, gas::PartitionStrategy::kGreedy);
    rf = p.replication_factor();
    benchmark::DoNotOptimize(rf);
  }
  state.counters["replication_factor"] = rf;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_PartitionGreedy);

// ---- compressed CSR: encode / decode / intersect kernels ----

/// The decode workload: the orkut replica (degree ~67, the densest of
/// the paper's datasets) at a scale whose flat adjacency leaves L2 —
/// a tiny L1-resident graph would flatter the raw scan (cache-speed
/// loads) while charging decode its full per-row cost.
const CsrGraph& decode_graph() {
  static const CsrGraph g = gen::make_dataset("orkut", 0.25, 9);
  return g;
}

void BM_CompressedEncode(benchmark::State& state) {
  const CsrGraph& g = decode_graph();
  std::size_t packed = 0;
  for (auto _ : state) {
    const auto c = CompressedCsrGraph::from_graph(g);
    packed = c.adjacency_bytes();
    benchmark::DoNotOptimize(packed);
  }
  const auto flat =
      static_cast<double>(g.num_edges()) * 2 * sizeof(VertexId);
  state.counters["compression_ratio"] =
      packed > 0 ? flat / static_cast<double>(packed) : 1.0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * g.num_edges()));
}
BENCHMARK(BM_CompressedEncode)->Unit(benchmark::kMillisecond);

/// Baseline the decoders are measured against: summing the flat
/// out_targets array — pure sequential memory traffic, no unpacking.
void BM_RowScanRaw(benchmark::State& state) {
  const CsrGraph& g = decode_graph();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (const VertexId v : g.out_neighbors(u)) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_RowScanRaw);

void decode_scan(benchmark::State& state, simd::Level level) {
  const CsrGraph& g = decode_graph();
  static const CompressedCsrGraph c = CompressedCsrGraph::from_graph(g);
  simd::override_level(level);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (VertexId u = 0; u < c.num_vertices(); ++u) {
      for (const VertexId v : c.out_neighbors(u)) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.counters["dispatch_is_avx2"] =
      simd::active_level() == simd::Level::kAvx2 ? 1.0 : 0.0;
  simd::clear_level_override();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}

void BM_RowScanDecodeScalar(benchmark::State& state) {
  decode_scan(state, simd::Level::kScalar);
}
BENCHMARK(BM_RowScanDecodeScalar);

void BM_RowScanDecodeSimd(benchmark::State& state) {
  // On scalar-only builds/CPUs the kAvx2 pin is ignored and this
  // measures the scalar path again (dispatch_is_avx2 reports which).
  decode_scan(state, simd::Level::kAvx2);
}
BENCHMARK(BM_RowScanDecodeSimd);

void intersect_bench(benchmark::State& state, simd::Level level) {
  const auto a = sorted_ids(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = sorted_ids(static_cast<std::size_t>(state.range(0)), 2);
  simd::override_level(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::intersect_count(a, b));
  }
  simd::clear_level_override();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}

void BM_IntersectMerge(benchmark::State& state) {
  intersect_bench(state, simd::Level::kScalar);
}
BENCHMARK(BM_IntersectMerge)->Arg(16)->Arg(64)->Arg(200)->Arg(1000);

void BM_IntersectSimd(benchmark::State& state) {
  intersect_bench(state, simd::Level::kAvx2);
}
BENCHMARK(BM_IntersectSimd)->Arg(16)->Arg(64)->Arg(200)->Arg(1000);

// ---- random-walk stepping (the Cassovary kernel) ----

void BM_RandomWalks(benchmark::State& state) {
  static const CsrGraph g = gen::make_dataset("gowalla", 0.1, 9);
  const cassovary::RandomWalkEngine engine(g);
  cassovary::WalkConfig cfg;
  cfg.walks = static_cast<std::size_t>(state.range(0));
  cfg.depth = 3;
  for (auto _ : state) {
    const auto counts = engine.visit_counts(100, cfg);
    benchmark::DoNotOptimize(counts.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_RandomWalks)->Arg(10)->Arg(100)->Arg(1000);

// ---- generator throughput ----

void BM_AffiliationGraph(benchmark::State& state) {
  gen::AffiliationParams params;
  params.target_avg_degree = 12.0;
  for (auto _ : state) {
    const auto g = gen::affiliation_graph(
        static_cast<VertexId>(state.range(0)), params, 11);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_AffiliationGraph)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace snaple

BENCHMARK_MAIN();
