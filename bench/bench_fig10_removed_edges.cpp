// Figure 10: evolution of recall when removing more edges per vertex.
//
// Paper setup (§5.8): livejournal and pokec, 1..5 removed outgoing edges
// per qualifying vertex (never leaving fewer than one), klocal=80.
//
// Expected shape: recall decreases roughly proportionally to the number
// of removed edges — hiding edges also removes the 2-hop paths SNAPLE
// scores along.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 10 — recall vs removed edges per vertex",
      "klocal=80; Sum-family scores on livejournal and pokec replicas.");

  struct DatasetPoint {
    const char* name;
    double base_scale;
  };
  const DatasetPoint datasets[] = {{"livejournal", 0.4}, {"pokec", 0.4}};
  const auto cluster = gas::ClusterConfig::type_ii(4);

  Table table({"dataset", "score", "removed=1", "removed=2", "removed=3",
               "removed=4", "removed=5"});
  for (const auto& [name, base_scale] : datasets) {
    for (const ScoreKind score :
         {ScoreKind::kCounter, ScoreKind::kEuclSum, ScoreKind::kGeomSum,
          ScoreKind::kLinearSum, ScoreKind::kPpr}) {
      std::vector<std::string> row;
      std::string ds_name;
      for (const std::size_t removed : {1ul, 2ul, 3ul, 4ul, 5ul}) {
        const auto ds = eval::prepare_dataset(
            name, base_scale * opt.scale, opt.seed, removed);
        ds_name = ds.name;
        SnapleConfig cfg;
        cfg.score = score;
        cfg.k_local = 80;
        const auto out = eval::run_snaple_experiment(ds, cfg, cluster);
        row.push_back(Table::fmt(out.recall, 3));
      }
      std::vector<std::string> full_row{ds_name, score_name(score)};
      full_row.insert(full_row.end(), row.begin(), row.end());
      table.add_row(std::move(full_row));
    }
  }
  bench::finish(table, opt);
  return 0;
}
