// Figure 8: computing time vs recall across scoring configurations.
//
// Paper setup (§5.7): every Table-3 scoring method, grouped by aggregator
// (Sum / Mean / Geom families), swept over klocal ∈ {5,10,20,40,80} on
// livejournal and twitter with 256 simulated type-I cores. Each point is
// one (time, recall) pair.
//
// Expected shape: Sum-family recall grows with klocal (it rewards
// popularity); Mean peaks at small klocal then declines; Geom shows the
// same pattern more strongly. Time grows with klocal for every family.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace snaple;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 8 — recall vs computing time per scoring configuration",
      "one row per (score, klocal); 32 simulated type-I machines "
      "(256 cores). Group rows by aggregator to read the figure.");

  struct DatasetPoint {
    const char* name;
    double base_scale;
  };
  const DatasetPoint datasets[] = {{"livejournal", 0.4}, {"twitter", 0.2}};
  const auto cluster = gas::ClusterConfig::type_i(32);

  Table table({"dataset", "aggregator", "score", "klocal", "recall",
               "sim time (s)", "host time (s)"});
  for (const auto& [name, base_scale] : datasets) {
    const auto ds = bench::prepare(name, base_scale, opt);
    for (const AggregatorKind agg :
         {AggregatorKind::kSum, AggregatorKind::kMean,
          AggregatorKind::kGeom}) {
      for (const ScoreKind score : score_kinds_with_aggregator(agg)) {
        for (const std::size_t klocal : {5ul, 10ul, 20ul, 40ul, 80ul}) {
          SnapleConfig cfg;
          cfg.score = score;
          cfg.k_local = klocal;
          const auto out = eval::run_snaple_experiment(ds, cfg, cluster);
          table.add_row({ds.name, Aggregator(agg).name(),
                         score_name(score), std::to_string(klocal),
                         Table::fmt(out.recall, 3),
                         Table::fmt(out.simulated_seconds, 3),
                         Table::fmt(out.wall_seconds, 2)});
        }
      }
    }
  }
  bench::finish(table, opt);
  return 0;
}
