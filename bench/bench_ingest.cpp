// Ingestion throughput: the ROADMAP "real-dataset ingestion path at
// scale" item (the paper loads twitter-rv's 1.4B edges before §5 can even
// start).
//
// Generates an RMAT graph of ~4M edges × --scale, writes it as a SNAP
// text edge list and as binary v1/v2, then times every load path:
//
//   text-serial     getline + istringstream through GraphBuilder (the
//                   pre-optimization reference, kept as the stream API)
//   text-parallel   mmap + line-aligned chunks + hand-rolled scanner +
//                   parallel counting-sort CSR build, at several pool sizes
//   binary-v1       legacy per-edge record stream through GraphBuilder
//   binary-v2       bulk reads of the four CSR arrays + parallel validation
//
// Every path must produce a CsrGraph byte-identical to the generated one
// (checked; a mismatch fails the run, which doubles as a CI smoke test).
// Expected shape: text-parallel ≥4× text-serial by 8 threads (the scanner
// alone buys most of it on one core), binary-v2 ≥10× binary-v1.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "graph/gen/generators.hpp"
#include "graph/io.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace snaple;

/// Times fn(), repeating fast runs (returns the best time) so smoke-scale
/// rows are not pure noise. fn must be idempotent.
template <typename Fn>
double time_best(Fn&& fn, int max_reps = 3, double slow_enough_s = 0.5) {
  double best = 1e100;
  for (int rep = 0; rep < max_reps; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
    if (best >= slow_enough_s) break;
  }
  return best;
}

bool same_graph(const CsrGraph& a, const CsrGraph& b) {
  return a.num_vertices() == b.num_vertices() &&
         a.num_edges() == b.num_edges() &&
         std::equal(a.out_offsets().begin(), a.out_offsets().end(),
                    b.out_offsets().begin()) &&
         std::equal(a.out_targets().begin(), a.out_targets().end(),
                    b.out_targets().begin()) &&
         std::equal(a.in_offsets().begin(), a.in_offsets().end(),
                    b.in_offsets().begin()) &&
         std::equal(a.in_sources().begin(), a.in_sources().end(),
                    b.in_sources().begin());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "— (ROADMAP: billion-edge ingestion; no paper figure)",
      "edge-list load throughput: serial vs parallel text parse, binary "
      "v1 vs v2");

  const auto target_edges =
      static_cast<EdgeIndex>(4'000'000 * opt.scale);
  gen::RmatParams params;
  params.edges = std::max<EdgeIndex>(target_edges, 10'000);
  params.scale = 2;
  while ((EdgeIndex{1} << params.scale) * 16 < params.edges) ++params.scale;
  std::cout << "generating rmat graph (~" << params.edges << " edges)...\n";
  const CsrGraph graph = gen::rmat(params, opt.seed);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges\n\n";

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("snaple-ingest-" + std::to_string(static_cast<unsigned long long>(
                              opt.seed ^ graph.num_edges())));
  fs::create_directories(dir);
  const std::string text_path = (dir / "graph.txt").string();
  const std::string v1_path = (dir / "graph.v1.bin").string();
  const std::string v2_path = (dir / "graph.v2.bin").string();
  save_edge_list_text_file(graph, text_path);
  save_binary_v1_file(graph, v1_path);
  save_binary_file(graph, v2_path);

  Table table({"path", "threads", "file MB", "load s", "MB/s", "Medges/s",
               "speedup"});
  const auto edges_m = static_cast<double>(graph.num_edges()) / 1e6;
  bool all_identical = true;

  const auto add_row = [&](const std::string& name, std::size_t threads,
                           const std::string& file, double seconds,
                           double baseline_s) {
    const auto mb = static_cast<double>(fs::file_size(file)) / 1e6;
    table.add_row({name, std::to_string(threads), Table::fmt(mb, 1),
                   Table::fmt(seconds, 3), Table::fmt(mb / seconds, 1),
                   Table::fmt(edges_m / seconds, 2),
                   baseline_s > 0.0 ? Table::fmt(baseline_s / seconds, 2)
                                    : "1.00"});
  };

  // --- text-serial: the reference stream loader ---
  CsrGraph loaded;
  const double text_serial_s = time_best([&] {
    std::ifstream in(text_path);
    loaded = load_edge_list_text(in);
  });
  all_identical &= same_graph(graph, loaded);
  add_row("text-serial", 1, text_path, text_serial_s, 0.0);

  // --- text-parallel at several pool sizes (slot counts) ---
  for (const std::size_t threads : {2ul, 4ul, 8ul}) {
    ThreadPool pool(threads - 1);  // + the calling thread
    const double s = time_best(
        [&] { loaded = load_edge_list_text_file(text_path, false, &pool); });
    all_identical &= same_graph(graph, loaded);
    add_row("text-parallel", pool.slot_count(), text_path, s, text_serial_s);
  }
  {
    // Default pool (hardware concurrency, or --threads=<n>).
    std::unique_ptr<ThreadPool> own;
    ThreadPool* pool = nullptr;
    if (opt.threads > 1) {
      own = std::make_unique<ThreadPool>(opt.threads - 1);
      pool = own.get();
    }
    const std::size_t slots =
        pool != nullptr ? pool->slot_count() : default_pool().slot_count();
    const double s = time_best(
        [&] { loaded = load_edge_list_text_file(text_path, false, pool); });
    all_identical &= same_graph(graph, loaded);
    add_row("text-parallel", slots, text_path, s, text_serial_s);
  }

  // --- binary v1 (legacy per-edge records) vs v2 (bulk CSR arrays) ---
  const double v1_s =
      time_best([&] { loaded = load_binary_file(v1_path); });
  all_identical &= same_graph(graph, loaded);
  add_row("binary-v1", 1, v1_path, v1_s, 0.0);

  const double v2_s =
      time_best([&] { loaded = load_binary_file(v2_path); });
  all_identical &= same_graph(graph, loaded);
  add_row("binary-v2", default_pool().slot_count(), v2_path, v2_s, v1_s);

  bench::finish(table, opt, "ingest");

  std::error_code ec;
  fs::remove_all(dir, ec);

  if (!all_identical) {
    std::cerr << "FAIL: a load path produced a different graph\n";
    return 1;
  }
  std::cout << "all load paths produced identical graphs\n";
  return 0;
}
